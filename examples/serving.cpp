// Serving: two competing clients share one long-lived QrSession — the
// production shape the serving-QoS layer exists for. A *bulk* client floods
// its own FactorStream with least-squares requests as fast as it can push;
// an *interactive* client issues one request at a time on a second stream
// and cares about tail latency, not throughput. The session pool deals both
// streams' grafts through the pool-level fairness rotation, so the bulk
// backlog cannot starve the interactive client, and each stream's QoS knobs
// protect the server:
//
//   bulk        max_queued=16, overflow=Block  — bounded request memory: the
//               producer parks when it outruns the pool instead of growing
//               an unbounded queue;
//   interactive low_watermark=1, flush_deadline=2ms — a graft stays queued
//               behind the live one and no request coalesces for longer than
//               the deadline, trading fusion depth for tail latency.
//
// Shapes are mixed on purpose: every pushed shape is routed through the tree
// autotuner (TILEDQR_TREE=auto|flat|binary|fibonacci|greedy|plasma bypasses
// it for A/B runs).
//
//   ./serving [requests] [m] [n] [nb]
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

#include <cmath>

#include "common/timer.hpp"
#include "core/qr_session.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/schedule_report.hpp"
#include "obs/trace.hpp"

using namespace tiledqr;

namespace {

struct RequestData {
  Matrix<double> a;
  Matrix<double> b;
};

std::vector<RequestData> make_problems(int count, std::int64_t m, std::int64_t n, int nb,
                                       unsigned seed) {
  std::vector<RequestData> problems;
  problems.reserve(size_t(count));
  for (int i = 0; i < count; ++i) {
    const std::int64_t mi = i % 3 == 1 ? m + m / 2 : m;
    const std::int64_t ni = i % 3 == 2 ? std::max<std::int64_t>(nb, n / 2) : n;
    problems.push_back(RequestData{random_matrix<double>(mi, ni, seed + unsigned(i)),
                                   random_matrix<double>(mi, 1, seed + 2000 + unsigned(i))});
  }
  return problems;
}

/// Residual of the normal equations: ‖Aᵀ(Ax − b)‖ / ‖b‖ ~ 0 at the minimizer.
double residual(const RequestData& req, const Matrix<double>& x) {
  Matrix<double> ax(req.a.rows(), 1);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0, req.a.view(), x.view(), 0.0, ax.view());
  for (std::int64_t r = 0; r < req.a.rows(); ++r) ax(r, 0) -= req.b(r, 0);
  Matrix<double> atr(req.a.cols(), 1);
  blas::gemm(blas::Op::ConjTrans, blas::Op::NoTrans, 1.0, req.a.view(), ax.view(), 0.0,
             atr.view());
  return double(frobenius_norm<double>(atr.view())) / double(frobenius_norm<double>(req.b.view()));
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(v.size() - 1, size_t(p * double(v.size() - 1) + 0.5));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const int requests = argc > 1 ? std::atoi(argv[1]) : 32;
  const std::int64_t m = argc > 2 ? std::atoll(argv[2]) : 768;
  const std::int64_t n = argc > 3 ? std::atoll(argv[3]) : 256;
  const int nb = argc > 4 ? std::atoi(argv[4]) : 128;
  const int interactive_count = std::max(4, requests / 4);

  std::printf("tiledqr serving demo: bulk client (%d least-squares requests, flooded) vs "
              "interactive client (%d requests, one at a time) around %lld x %lld (nb = %d)\n",
              requests, interactive_count, (long long)m, (long long)n, nb);

  // One session for the lifetime of the "server": a persistent worker pool,
  // a plan cache, and a tree autotuner shared by every client.
  core::QrSession session;

  // TILEDQR_HEALTH=1 attaches the live health layer: `kill -USR1 <pid>`
  // (or HealthMonitor::request_snapshot from code) writes an append-safe
  // snapshot of the metrics registry plus the session's schedule report —
  // with the critical-path breakdown when tracing — while the server keeps
  // serving, and the stall/overrun watchdog runs in the background. Knobs:
  // TILEDQR_HEALTH_PATH, _POLL_MS, _STALL_MS, _OVERRUN_FACTOR.
  auto health = obs::HealthMonitor::maybe_from_env(
      session.pool(), [&session] { return session.health_report(); });
  if (health)
    std::printf("health monitor live (pid %d): SIGUSR1 dumps a snapshot without stopping\n",
                int(::getpid()));

  auto bulk_problems = make_problems(requests, m, n, nb, 7000);
  auto interactive_problems = make_problems(interactive_count, m, n, nb, 31000);

  // Each client labels its stream, so its counters and request-latency
  // histogram export from the global metrics registry as "stream.bulk.*" /
  // "stream.interactive.*" — the per-client report below reads the registry
  // snapshot instead of aggregating by hand.
  core::QrSession::StreamOptions bulk_opt;
  bulk_opt.label = "bulk";
  bulk_opt.nb = nb;
  bulk_opt.ib = std::min(32, nb);
  bulk_opt.max_queued = 16;  // backpressure: the flood cannot outgrow the pool
  bulk_opt.overflow = core::QrSession::StreamOverflow::Block;

  core::QrSession::StreamOptions inter_opt;
  inter_opt.label = "interactive";
  inter_opt.nb = nb;
  inter_opt.ib = std::min(32, nb);
  inter_opt.low_watermark = 1;  // keep a graft queued behind the live one
  inter_opt.flush_deadline = std::chrono::milliseconds(2);  // cap coalescing latency

  double bulk_seconds = 0.0;
  std::vector<Matrix<double>> bulk_solutions(size_t(requests), Matrix<double>(0, 0));
  std::vector<Matrix<double>> inter_solutions(size_t(interactive_count), Matrix<double>(0, 0));
  std::vector<double> inter_latencies_ms;

  WallTimer wall;
  std::thread bulk_client([&] {
    auto stream = session.stream<double>(bulk_opt);
    WallTimer timer;
    std::vector<std::future<Matrix<double>>> inflight;
    inflight.reserve(size_t(requests));
    for (auto& req : bulk_problems)
      inflight.push_back(stream.push_solve(ConstMatrixView<double>(req.a.view()),
                                           ConstMatrixView<double>(req.b.view())));
    for (int i = 0; i < requests; ++i) bulk_solutions[size_t(i)] = inflight[size_t(i)].get();
    bulk_seconds = timer.seconds();
    stream.close();
  });
  std::thread interactive_client([&] {
    auto stream = session.stream<double>(inter_opt);
    inter_latencies_ms.reserve(size_t(interactive_count));
    for (int i = 0; i < interactive_count; ++i) {
      auto& req = interactive_problems[size_t(i)];
      WallTimer timer;
      inter_solutions[size_t(i)] = stream
                                       .push_solve(ConstMatrixView<double>(req.a.view()),
                                                   ConstMatrixView<double>(req.b.view()))
                                       .get();
      inter_latencies_ms.push_back(timer.seconds() * 1e3);
    }
    stream.close();
  });
  bulk_client.join();
  interactive_client.join();
  const double seconds = wall.seconds();

  double worst_residual = 0.0;
  for (int i = 0; i < requests; ++i)
    worst_residual = std::max(worst_residual, residual(bulk_problems[size_t(i)],
                                                       bulk_solutions[size_t(i)]));
  for (int i = 0; i < interactive_count; ++i)
    worst_residual = std::max(worst_residual, residual(interactive_problems[size_t(i)],
                                                       inter_solutions[size_t(i)]));

  double mean_ms = 0.0;
  for (double v : inter_latencies_ms) mean_ms += v;
  mean_ms /= double(std::max<size_t>(1, inter_latencies_ms.size()));

  // Per-client stats come from the unified metrics registry: both streams
  // are closed by now, so their final counters live on as retired samples
  // under the labels chosen above ("stream.bulk.*", "stream.interactive.*").
  const auto snap = obs::MetricsRegistry::global().snapshot();
  auto metric = [&snap](const std::string& name) {
    const double v = snap.value(name);
    return std::isnan(v) ? 0.0 : v;
  };
  auto cache = session.plan_cache_stats();
  auto pool = session.pool_stats();
  auto tuning = session.tuning_stats();
  std::printf("served %d requests from 2 competing clients in %.3f s (%.1f req/s overall)\n",
              requests + interactive_count, seconds,
              double(requests + interactive_count) / seconds);
  std::printf("worst normal-equation residual: %.3e\n", worst_residual);
  std::printf("bulk client:        %d requests in %.3f s (%.1f req/s); "
              "peak unresolved %.0f (max_queued=16, Block)\n",
              requests, bulk_seconds, requests / bulk_seconds,
              metric("stream.bulk.peak_unresolved"));
  std::printf("  stream: %.0f pushes -> %.0f grafts (%.0f rode fused grafts); "
              "admit-to-resolve p50 %.1f ms, p95 %.1f ms\n",
              metric("stream.bulk.pushed"), metric("stream.bulk.components"),
              metric("stream.bulk.fused_requests"),
              metric("stream.bulk.latency.p50_us") * 1e-3,
              metric("stream.bulk.latency.p95_us") * 1e-3);
  std::printf("interactive client: %d requests, latency mean %.1f ms, p50 %.1f ms, "
              "p95 %.1f ms (low_watermark=1, flush_deadline=2ms, %.0f deadline flushes)\n",
              interactive_count, mean_ms, percentile(inter_latencies_ms, 0.50),
              percentile(inter_latencies_ms, 0.95),
              metric("stream.interactive.deadline_flushes"));
  std::printf("  stream: admit-to-resolve p50 %.1f ms, p95 %.1f ms\n",
              metric("stream.interactive.latency.p50_us") * 1e-3,
              metric("stream.interactive.latency.p95_us") * 1e-3);
  std::printf("autotuner: %ld hits / %ld misses, %zu shape decisions\n", tuning.hits,
              tuning.misses, tuning.entries);
  std::printf("plan cache: %ld hits / %ld misses (hit rate %.3f), fused: %ld hits / %ld misses\n",
              cache.hits, cache.misses, cache.hit_rate(), cache.fused_hits, cache.fused_misses);
  std::printf("pool: %ld tasks executed, %ld stolen, %ld graphs, %ld streams opened "
              "(%ld still live)\n",
              pool.tasks_executed, pool.tasks_stolen, pool.graphs_completed,
              pool.streams_opened, pool.streams_live);

  // Under TILEDQR_TRACE the whole run was recorded; summarize where the
  // workers spent their time (the raw events export at process exit).
  auto& tracer = obs::Tracer::instance();
  if (tracer.enabled()) {
    auto report = obs::format_schedule_report(obs::build_schedule_report(tracer));
    if (!report.empty()) std::printf("\n%s", report.c_str());
  }
  if (health) {
    const auto hs = health->stats();
    std::printf("health watchdog: %ld stalls, %ld overruns, %ld snapshots written\n",
                hs.stalls, hs.overruns, hs.snapshots);
  }
  return worst_residual < 1e-8 ? 0 : 1;
}
