// Block orthogonalization (TSQR): compute an orthogonal basis of the column
// span of a very tall block of vectors — the block-iterative-methods workload
// from the paper's introduction (all block Krylov methods orthogonalize a set
// of vectors at every step).
//
// Also demonstrates complex arithmetic, where the paper's experiments show
// the TT-kernel algorithms at their best.
//
//   ./tsqr_orthogonalization [m] [n] [nb]
#include <complex>
#include <cstdio>
#include <cstdlib>

#include "common/timer.hpp"
#include "core/tiled_qr.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"

using namespace tiledqr;

template <typename T>
int run(const char* label, std::int64_t m, std::int64_t n, int nb) {
  auto v = random_matrix<T>(m, n, 123);

  // BinaryTree is the classic TSQR reduction; Greedy adapts automatically
  // and is never worse in critical path.
  for (auto kind : {trees::TreeKind::Greedy, trees::TreeKind::BinaryTree}) {
    core::Options opt;
    opt.tree = trees::TreeConfig{kind, trees::KernelFamily::TT, 1, 0};
    opt.nb = nb;
    opt.ib = std::min(32, nb);

    WallTimer timer;
    auto qr = core::TiledQr<T>::factorize(v.view(), opt);
    auto q = qr.q_thin();
    double secs = timer.seconds();

    double orth = orthogonality_error<T>(q.view());
    // The basis must span the same space: V = Q (Q^H V).
    Matrix<T> qhv(n, n);
    blas::gemm(blas::Op::ConjTrans, blas::Op::NoTrans, T(1), q.view(), v.view(), T(0),
               qhv.view());
    Matrix<T> back(m, n);
    blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, T(1), q.view(), qhv.view(), T(0),
               back.view());
    double span =
        double(difference_norm<T>(back.view(), v.view()) / frobenius_norm<T>(v.view()));

    std::printf("  [%s] %-12s cp %5ld  ||I-Q^HQ|| %.2e  span error %.2e  (%.3fs)\n", label,
                qr.options().tree->name().c_str(), qr.plan().critical_path, orth, span, secs);
    if (orth > 1e-12 * double(m) || span > 1e-12 * double(m)) return 1;
  }
  return 0;
}

int main(int argc, char** argv) {
  const std::int64_t m = argc > 1 ? std::atoll(argv[1]) : 6000;
  const std::int64_t n = argc > 2 ? std::atoll(argv[2]) : 48;
  const int nb = argc > 3 ? std::atoi(argv[3]) : 48;
  std::printf("TSQR orthogonalization of a %lld x %lld block (p = %lld tile rows)\n",
              (long long)m, (long long)n, (long long)((m + nb - 1) / nb));
  int rc = run<double>("double", m, n, nb);
  rc |= run<std::complex<double>>("complex", m, n, nb);
  std::printf("%s\n", rc == 0 ? "OK" : "FAILED");
  return rc;
}
