// Shared experimental-sweep driver for the wall-clock benches (Figures 1, 2,
// 3, 6, 7, 8 and Tables 6-9).
//
// PlasmaTree's "best" curve: the paper searches every domain size
// exhaustively on the testbed. Here the candidate set is pruned to the
// theoretical best BS plus the paper's recurring choices {1, 3, 5, 10, 17,
// 20, 27, p}; each candidate is actually run and the fastest kept.
#pragma once

#include <map>
#include <set>

#include "bench_common.hpp"
#include "core/experiment.hpp"

namespace tiledqr::bench {

struct SweepEntry {
  core::RunRecord flat, plasma, fibonacci, greedy;
  int plasma_bs = 1;
  // TS family (only filled by all-kernel sweeps):
  core::RunRecord flat_ts, plasma_ts;
  int plasma_ts_bs = 1;
};

inline std::vector<int> plasma_candidates(int p, int q, trees::KernelFamily family) {
  std::set<int> c{1, 3, 5, 10, 17, 20, 27, p};
  c.insert(core::best_plasma_bs(p, q, family).bs);
  std::vector<int> out;
  for (int bs : c)
    if (bs >= 1 && bs <= p) out.push_back(bs);
  return out;
}

template <typename T>
core::RunRecord best_plasma(const core::RunConfig& base, trees::KernelFamily family,
                            int* best_bs) {
  core::RunRecord best;
  for (int bs : plasma_candidates(base.p, base.q, family)) {
    core::RunConfig cfg = base;
    cfg.tree = trees::TreeConfig{trees::TreeKind::PlasmaTree, family, bs, 0};
    auto rec = core::run_factorization<T>(cfg);
    if (best.seconds == 0.0 || rec.seconds < best.seconds) {
      best = rec;
      *best_bs = bs;
    }
  }
  return best;
}

template <typename T>
SweepEntry run_sweep_point(const Knobs& knobs, int q, bool include_ts) {
  core::RunConfig base;
  base.p = knobs.p;
  base.q = q;
  base.nb = knobs.nb;
  base.ib = std::min(knobs.ib, knobs.nb);
  base.threads = knobs.threads;
  // Small-q runs take milliseconds and are noisy; since PlasmaTree's curve
  // takes the best over several domain sizes, noise would bias it upward.
  // Repeat small problems more so each estimate is tight.
  base.reps = std::min(10, knobs.reps * std::max(1, 12 / std::max(1, q)));

  using trees::KernelFamily;
  using trees::TreeKind;
  SweepEntry e;
  base.tree = trees::TreeConfig{TreeKind::FlatTree, KernelFamily::TT, 1, 0};
  e.flat = core::run_factorization<T>(base);
  base.tree = trees::TreeConfig{TreeKind::Fibonacci, KernelFamily::TT, 1, 0};
  e.fibonacci = core::run_factorization<T>(base);
  base.tree = trees::TreeConfig{TreeKind::Greedy, KernelFamily::TT, 1, 0};
  e.greedy = core::run_factorization<T>(base);
  e.plasma = best_plasma<T>(base, KernelFamily::TT, &e.plasma_bs);
  if (include_ts) {
    base.tree = trees::TreeConfig{TreeKind::FlatTree, KernelFamily::TS, 1, 0};
    e.flat_ts = core::run_factorization<T>(base);
    e.plasma_ts = best_plasma<T>(base, KernelFamily::TS, &e.plasma_ts_bs);
  }
  return e;
}

}  // namespace tiledqr::bench
