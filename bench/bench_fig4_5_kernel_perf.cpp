// Figures 4 and 5: sequential kernel performance, in cache and out of cache,
// for double complex (Fig. 4) and double (Fig. 5). The paper's headline
// numbers are the ratios TSQRT / (GEQRT + TTQRT) and TSMQR / (UNMQR + TTMQR),
// both ~1.3 on its testbed: TS kernels run faster per flop than the TT pairs
// doing the same job.
#include <complex>

#include "bench_common.hpp"
#include "perf/kernel_bench.hpp"

using namespace tiledqr;
using kernels::KernelKind;

namespace {

template <typename T>
void kernel_figure(const char* precision, const bench::Knobs& knobs) {
  for (auto mode : {perf::CacheMode::InCache, perf::CacheMode::OutOfCache}) {
    const char* mode_name = mode == perf::CacheMode::InCache ? "in_cache" : "out_of_cache";
    TextTable t(stringf("kernel GFLOP/s, %s, %s", precision, mode_name));
    t.set_header({"nb", "GEQRT", "TSQRT", "TTQRT", "GEQRT+TTQRT", "UNMQR", "TSMQR", "TTMQR",
                  "UNMQR+TTMQR", "GEMM", "TS/TT factor", "TS/TT update"});
    for (int nb : {60, 120, 200, 300}) {
      if (knobs.quick && nb > 120) continue;
      const int reps = nb >= 200 ? std::max(2, knobs.reps) : knobs.reps + 3;
      auto r = perf::measure_kernel_rates<T>(nb, std::min(knobs.ib, nb), mode, reps);
      auto f = [&](double v) { return stringf("%.3f", v); };
      // Per-flop speed ratio of the TS kernel over the TT pair doing the
      // same 6 (resp. 12+6... 18) units of work: time ratio at equal work.
      double factor_ratio = r.geqrt_plus_ttqrt > 0 ? r.of(KernelKind::TSQRT) / r.geqrt_plus_ttqrt : 0;
      double update_ratio = r.unmqr_plus_ttmqr > 0 ? r.of(KernelKind::TSMQR) / r.unmqr_plus_ttmqr : 0;
      t.add_row({std::to_string(nb), f(r.of(KernelKind::GEQRT)), f(r.of(KernelKind::TSQRT)),
                 f(r.of(KernelKind::TTQRT)), f(r.geqrt_plus_ttqrt), f(r.of(KernelKind::UNMQR)),
                 f(r.of(KernelKind::TSMQR)), f(r.of(KernelKind::TTMQR)), f(r.unmqr_plus_ttmqr),
                 f(r.gemm), f(factor_ratio), f(update_ratio)});
    }
    bench::emit(t, stringf("fig4_5_kernels_%s_%s", precision, mode_name), knobs);
  }
}

}  // namespace

int main() {
  bench::Knobs knobs;
  bench::banner("Figures 4/5: kernel performance (in/out of cache)", knobs);
  kernel_figure<std::complex<double>>("double_complex", knobs);
  kernel_figure<double>("double", knobs);
  return 0;
}
