// Figures 4 and 5: sequential kernel performance, in cache and out of cache,
// for double complex (Fig. 4) and double (Fig. 5). The paper's headline
// numbers are the ratios TSQRT / (GEQRT + TTQRT) and TSMQR / (UNMQR + TTMQR),
// both ~1.3 on its testbed: TS kernels run faster per flop than the TT pairs
// doing the same job.
//
// Also sweeps the SIMD dispatch tiers (scalar baseline vs each vector tier
// this binary and CPU support) at nb = 128 double and records the per-tier
// rates plus speedups over scalar as JSON (TILEDQR_BENCH_JSON, default
// BENCH_kernels.json) — the recorded evidence for the >= 2x microkernel
// acceptance target and the rates the tuner's measured/live profiles see.
#include <complex>
#include <cstdlib>
#include <fstream>

#include "bench_common.hpp"
#include "blas/simd/simd.hpp"
#include "perf/kernel_bench.hpp"

using namespace tiledqr;
using kernels::KernelKind;

namespace {

template <typename T>
void kernel_figure(const char* precision, const bench::Knobs& knobs) {
  for (auto mode : {perf::CacheMode::InCache, perf::CacheMode::OutOfCache}) {
    const char* mode_name = mode == perf::CacheMode::InCache ? "in_cache" : "out_of_cache";
    TextTable t(stringf("kernel GFLOP/s, %s, %s", precision, mode_name));
    t.set_header({"nb", "GEQRT", "TSQRT", "TTQRT", "GEQRT+TTQRT", "UNMQR", "TSMQR", "TTMQR",
                  "UNMQR+TTMQR", "GEMM", "TS/TT factor", "TS/TT update"});
    for (int nb : {60, 120, 200, 300}) {
      if (knobs.quick && nb > 120) continue;
      const int reps = nb >= 200 ? std::max(2, knobs.reps) : knobs.reps + 3;
      auto r = perf::measure_kernel_rates<T>(nb, std::min(knobs.ib, nb), mode, reps);
      auto f = [&](double v) { return stringf("%.3f", v); };
      // Per-flop speed ratio of the TS kernel over the TT pair doing the
      // same 6 (resp. 12+6... 18) units of work: time ratio at equal work.
      double factor_ratio = r.geqrt_plus_ttqrt > 0 ? r.of(KernelKind::TSQRT) / r.geqrt_plus_ttqrt : 0;
      double update_ratio = r.unmqr_plus_ttmqr > 0 ? r.of(KernelKind::TSMQR) / r.unmqr_plus_ttmqr : 0;
      t.add_row({std::to_string(nb), f(r.of(KernelKind::GEQRT)), f(r.of(KernelKind::TSQRT)),
                 f(r.of(KernelKind::TTQRT)), f(r.geqrt_plus_ttqrt), f(r.of(KernelKind::UNMQR)),
                 f(r.of(KernelKind::TSMQR)), f(r.of(KernelKind::TTMQR)), f(r.unmqr_plus_ttmqr),
                 f(r.gemm), f(factor_ratio), f(update_ratio)});
    }
    bench::emit(t, stringf("fig4_5_kernels_%s_%s", precision, mode_name), knobs);
  }
}

// Per-dispatch-tier kernel rates at a fixed tile size, double precision.
// Restores the auto-selected tier before returning.
void simd_tier_section(const bench::Knobs& knobs) {
  namespace simd = blas::simd;
  const int nb = int(env_long("TILEDQR_SIMD_NB", 128));
  const int ib = std::min(knobs.ib, nb);
  const int reps = knobs.reps + 3;
  const simd::Tier saved = simd::active_tier();

  struct Row {
    simd::Tier tier;
    perf::KernelRates rates;
  };
  std::vector<Row> rows;
  for (simd::Tier t : simd::available_tiers()) {
    simd::set_tier(t);
    rows.push_back({t, perf::measure_kernel_rates<double>(nb, ib, perf::CacheMode::InCache, reps)});
  }
  simd::set_tier(saved);

  const perf::KernelRates& base = rows.front().rates;
  TextTable t(stringf("SIMD dispatch tiers, double, in cache, nb=%d ib=%d", nb, ib));
  t.set_header({"tier", "GEQRT", "TSQRT", "TSMQR", "TTMQR", "GEMM", "GEQRT x", "TSMQR x"});
  for (const Row& row : rows) {
    const perf::KernelRates& r = row.rates;
    auto f = [&](double v) { return stringf("%.3f", v); };
    t.add_row({simd::tier_name(row.tier), f(r.of(KernelKind::GEQRT)), f(r.of(KernelKind::TSQRT)),
               f(r.of(KernelKind::TSMQR)), f(r.of(KernelKind::TTMQR)), f(r.gemm),
               f(r.of(KernelKind::GEQRT) / base.of(KernelKind::GEQRT)),
               f(r.of(KernelKind::TSMQR) / base.of(KernelKind::TSMQR))});
  }
  bench::emit(t, "fig4_5_simd_tiers", knobs);

  // JSON record: per-tier rates and speedups over scalar; the best tier's
  // speedups are the >= 2x acceptance evidence.
  const char* json_env = std::getenv("TILEDQR_BENCH_JSON");
  const std::string json_path =
      json_env ? std::string(json_env) : std::string("BENCH_kernels.json");
  if (json_path.empty()) return;
  // "Best" is the best-measured tier, not the widest: wider vectors do not
  // always win the panel kernels, and a run-to-run wobble in the last row
  // should not decide the recorded speedup.
  size_t best_i = 0;
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].rates.of(KernelKind::GEQRT) + rows[i].rates.of(KernelKind::TSMQR) >
        rows[best_i].rates.of(KernelKind::GEQRT) + rows[best_i].rates.of(KernelKind::TSMQR))
      best_i = i;
  }
  const perf::KernelRates& best = rows[best_i].rates;
  const double geqrt_x = best.of(KernelKind::GEQRT) / base.of(KernelKind::GEQRT);
  const double tsmqr_x = best.of(KernelKind::TSMQR) / base.of(KernelKind::TSMQR);
  std::ofstream out(json_path);
  out << "{\n  \"bench\": \"fig4_5_simd_tiers\",\n";
  out << stringf("  \"precision\": \"double\", \"nb\": %d, \"ib\": %d, \"reps\": %d,\n", nb, ib,
                 reps);
  out << "  \"tiers\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const perf::KernelRates& r = rows[i].rates;
    out << stringf("    {\"tier\": \"%s\", \"geqrt\": %.3f, \"tsqrt\": %.3f, \"ttqrt\": %.3f, "
                   "\"unmqr\": %.3f, \"tsmqr\": %.3f, \"ttmqr\": %.3f, \"gemm\": %.3f, "
                   "\"geqrt_speedup\": %.3f, \"tsmqr_speedup\": %.3f}%s\n",
                   simd::tier_name(rows[i].tier), r.of(KernelKind::GEQRT),
                   r.of(KernelKind::TSQRT), r.of(KernelKind::TTQRT), r.of(KernelKind::UNMQR),
                   r.of(KernelKind::TSMQR), r.of(KernelKind::TTMQR), r.gemm,
                   r.of(KernelKind::GEQRT) / base.of(KernelKind::GEQRT),
                   r.of(KernelKind::TSMQR) / base.of(KernelKind::TSMQR),
                   i + 1 < rows.size() ? "," : "");
  }
  out << "  ],\n";
  out << stringf("  \"best_tier\": \"%s\",\n", simd::tier_name(rows[best_i].tier));
  out << stringf("  \"geqrt_speedup\": %.3f, \"tsmqr_speedup\": %.3f,\n", geqrt_x, tsmqr_x);
  out << stringf("  \"meets_2x_target\": %s\n",
                 geqrt_x >= 2.0 && tsmqr_x >= 2.0 ? "true" : "false");
  out << "}\n";
  std::printf("(json written to %s)\n\n", json_path.c_str());
}

}  // namespace

int main() {
  bench::Knobs knobs;
  bench::banner("Figures 4/5: kernel performance (in/out of cache)", knobs);
  kernel_figure<std::complex<double>>("double_complex", knobs);
  kernel_figure<double>("double", knobs);
  simd_tier_section(knobs);
  return 0;
}
