// Table 4: (a) Greedy vs Asap vs Grasap(1) zero-times on 15 x 3 — the
// "neither Greedy nor Asap is optimal" finding — and (b) Greedy vs Asap
// critical paths on square-ish grids up to 128.
#include "bench_common.hpp"
#include "sim/critical_path.hpp"
#include "sim/dynamic.hpp"
#include "trees/generators.hpp"

using namespace tiledqr;

namespace {

void print_table(const std::string& name, const std::vector<std::vector<long>>& z, long cp,
                 const bench::Knobs& knobs) {
  TextTable t(stringf("%s (critical path %ld)", name.c_str(), cp));
  std::vector<std::string> header{"row"};
  for (size_t k = 1; k <= z[0].size(); ++k) header.push_back("k=" + std::to_string(k));
  t.set_header(header);
  for (size_t i = 0; i < z.size(); ++i) {
    std::vector<std::string> row{std::to_string(i + 1)};
    for (size_t k = 0; k < z[i].size(); ++k)
      row.push_back(z[i][k] == 0 ? (i <= k ? "?" : ".") : std::to_string(z[i][k]));
    t.add_row(row);
  }
  bench::emit(t, "table4a_" + name, knobs);
}

}  // namespace

int main() {
  bench::Knobs knobs;
  bench::banner("Table 4: Greedy / Asap / Grasap on 15 x 3, and larger grids", knobs);

  {
    auto g = dag::build_task_graph(15, 3, trees::greedy_tree(15, 3));
    auto cp = sim::earliest_finish(g);
    print_table("greedy", sim::zero_time_table(g, cp), cp.critical_path, knobs);
  }
  {
    auto asap = sim::simulate_asap(15, 3);
    print_table("asap", asap.zero_time, asap.critical_path, knobs);
  }
  {
    auto grasap = sim::simulate_grasap(15, 3, 1);
    print_table("grasap1", grasap.zero_time, grasap.critical_path, knobs);
  }

  TextTable t4b("Table 4b: Greedy generally outperforms Asap (critical paths)");
  t4b.set_header({"p", "q", "Greedy", "Asap"});
  for (int p : {16, 32, 64, 128}) {
    for (int q : {16, 32, 64, 128}) {
      if (q > p) continue;
      if (knobs.quick && p > 64) continue;
      long greedy = sim::critical_path_units(p, q, trees::greedy_tree(p, q));
      long asap = sim::simulate_asap(p, q).critical_path;
      t4b.add_row({std::to_string(p), std::to_string(q), std::to_string(greedy),
                   std::to_string(asap)});
    }
  }
  bench::emit(t4b, "table4b_greedy_vs_asap", knobs);
  return 0;
}
