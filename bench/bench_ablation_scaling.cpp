// Ablation: thread scaling. Measured GFLOP/s vs worker count, against the
// roofline prediction gamma_seq * T / max(T/P, cp) and the bounded-processor
// list-scheduling simulation (which accounts for packing losses the roofline
// ignores). A second simulated column weights the DAG with this machine's
// measured kernel seconds (the tuner's stage-1 model) instead of Table-1
// units.
#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "perf/kernel_bench.hpp"
#include "sim/bounded.hpp"
#include "sim/critical_path.hpp"
#include "trees/generators.hpp"

using namespace tiledqr;

int main() {
  bench::Knobs knobs;
  bench::banner("Ablation: thread scaling vs roofline and bounded simulation", knobs);
  const int p = knobs.quick ? 16 : std::min(knobs.p, 24);
  const int q = knobs.quick ? 4 : 8;

  double gamma = core::measure_gamma_seq<double>(knobs.nb, std::min(knobs.ib, knobs.nb));
  auto plan = core::make_plan(p, q, trees::TreeConfig{});
  long total = plan.graph.total_weight();
  std::printf("grid %d x %d, nb = %d, gamma_seq = %.3f GFLOP/s, cp = %ld, T = %ld\n\n", p, q,
              knobs.nb, gamma, plan.critical_path, total);

  // Measured per-kernel seconds for the weighted simulation column.
  auto kernel_sec = perf::measure_kernel_seconds<double>(knobs.nb, std::min(knobs.ib, knobs.nb),
                                                         perf::CacheMode::InCache, 5);
  const double flops_per_unit = double(knobs.nb) * double(knobs.nb) * double(knobs.nb) / 3.0;

  TextTable t("scaling of the Greedy factorization (double)");
  t.set_header({"threads", "GFLOP/s", "roofline", "bounded-sim", "sim util", "weighted-sim",
                "wsim util"});
  int maxt = default_thread_count();
  for (int threads : {1, 2, 4, 8, 16, 32}) {
    if (threads > maxt && threads / 2 >= maxt) break;
    core::RunConfig cfg;
    cfg.p = p;
    cfg.q = q;
    cfg.nb = knobs.nb;
    cfg.ib = std::min(knobs.ib, knobs.nb);
    cfg.threads = threads;
    cfg.reps = knobs.reps;
    auto rec = core::run_factorization<double>(cfg);
    double roof = core::predicted_gflops(gamma, p, q, plan.critical_path, threads);
    auto bounded = sim::simulate_bounded(plan.graph, threads);
    double sim_gflops = gamma * double(total) / double(bounded.makespan);
    // Weighted simulation: makespan in real seconds, so the predicted rate is
    // total flops over the simulated schedule length.
    auto weighted = sim::simulate_bounded_weighted(plan.graph, threads, kernel_sec,
                                                   sim::SimPriority::CriticalPath);
    double wsim_gflops = double(total) * flops_per_unit / weighted.makespan * 1e-9;
    t.add_row({std::to_string(threads), stringf("%.3f", rec.gflops), stringf("%.3f", roof),
               stringf("%.3f", sim_gflops), stringf("%.3f", bounded.utilization),
               stringf("%.3f", wsim_gflops), stringf("%.3f", weighted.utilization)});
  }
  bench::emit(t, "ablation_scaling", knobs);
  return 0;
}
