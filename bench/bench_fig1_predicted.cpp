// Figures 1a / 1c: predicted performance of the TT-kernel algorithms from
// the roofline model gamma_pred = gamma_seq * T / max(T/P, cp), with
// gamma_seq measured on this machine and cp from the simulator.
#include <complex>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "sim/critical_path.hpp"
#include "trees/generators.hpp"

using namespace tiledqr;

namespace {

template <typename T>
void predicted_table(const char* precision, const bench::Knobs& knobs) {
  const int p = knobs.p;
  const int workers = knobs.threads > 0 ? knobs.threads : default_thread_count();
  double gamma = core::measure_gamma_seq<T>(knobs.nb, std::min(knobs.ib, knobs.nb));
  std::printf("gamma_seq (%s) = %.4f GFLOP/s, P = %d\n", precision, gamma, workers);

  TextTable t(stringf("Figure 1 predicted GFLOP/s (%s), p = %d", precision, p));
  t.set_header({"q", "FlatTree(TT)", "PlasmaTree(TT,best)", "BS", "Fibonacci", "Greedy"});
  for (int q = 1; q <= p; ++q) {
    if (knobs.quick && q > 8 && q % 8 != 0) continue;
    auto pred = [&](long cp) {
      return stringf("%.2f", core::predicted_gflops(gamma, p, q, cp, workers));
    };
    long flat = sim::critical_path_units(
        p, q, trees::flat_tree(p, q, trees::KernelFamily::TT));
    auto plasma = core::best_plasma_bs(p, q, trees::KernelFamily::TT);
    long fib = sim::critical_path_units(p, q, trees::fibonacci_tree(p, q));
    long greedy = sim::critical_path_units(p, q, trees::greedy_tree(p, q));
    t.add_row({std::to_string(q), pred(flat), pred(plasma.critical_path),
               std::to_string(plasma.bs), pred(fib), pred(greedy)});
  }
  bench::emit(t, std::string("fig1_predicted_") + precision, knobs);
}

}  // namespace

int main() {
  bench::Knobs knobs;
  bench::banner("Figures 1a/1c: predicted performance, TT kernels", knobs);
  predicted_table<std::complex<double>>("double_complex", knobs);
  predicted_table<double>("double", knobs);
  return 0;
}
