// Table 1: the six kernels, their nominal weights (units of nb^3/3 flops),
// and their measured time ratios, which should approach the weight ratios as
// nb grows (the premise of the whole critical-path model).
#include "bench_common.hpp"
#include "perf/kernel_bench.hpp"

using namespace tiledqr;
using kernels::KernelKind;

int main() {
  bench::Knobs knobs;
  bench::banner("Table 1: tiled QR kernels and weights", knobs);

  TextTable weights("nominal kernel weights (units of nb^3/3 flops)");
  weights.set_header({"operation", "panel", "cost", "update", "cost"});
  weights.add_row({"factor square into triangle", "GEQRT", "4", "UNMQR", "6"});
  weights.add_row({"zero square with triangle on top", "TSQRT", "6", "TSMQR", "12"});
  weights.add_row({"zero triangle with triangle on top", "TTQRT", "2", "TTMQR", "6"});
  bench::emit(weights, "table1_weights", knobs);

  TextTable t("measured per-call time relative to GEQRT (in cache, double)");
  t.set_header({"nb", "GEQRT", "UNMQR", "TSQRT", "TSMQR", "TTQRT", "TTMQR", "ideal"});
  for (int nb : {32, 64, knobs.nb, 128}) {
    auto sec = perf::measure_kernel_seconds<double>(nb, std::min(knobs.ib, nb),
                                                    perf::CacheMode::InCache, knobs.reps + 3);
    double base = sec[size_t(KernelKind::GEQRT)];
    std::vector<std::string> row{std::to_string(nb)};
    for (int k = 0; k < 6; ++k) row.push_back(stringf("%.2f", sec[size_t(k)] / base));
    row.push_back("1.00/1.50/1.50/3.00/0.50/1.50");
    t.add_row(row);
  }
  bench::emit(t, "table1_measured", knobs);
  return 0;
}
