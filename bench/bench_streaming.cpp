// Streaming fusion: the regime FactorStream exists for.
//
// A continuous server sees requests one at a time. Three ways to run them:
//   per-matrix   — one pool submission per request (PR 1's serving shape):
//                  pays the full per-submission scheduling cost every time
//   fixed-fused  — group every `depth` requests into a submit_batch fusion:
//                  one submission per batch, but the caller must hold
//                  requests back to form batches
//   streamed     — push each request into a FactorStream the moment it
//                  arrives (corked per burst of `depth`, like a server that
//                  drains its accept queue): pushes coalesce into fused
//                  grafts appended to ONE live submission
//
// Two sections:
//   1. Scheduling overhead (empty bodies): the per-graph dispatch cost of
//      the three modes at several burst depths, hardware-independent enough
//      to compare across hosts. This is the headline: streamed grafts must
//      be within 10% of fixed-batch fusion (they ride the same cached
//      FusedPlans) and >= 1.3x cheaper than per-matrix submissions at
//      depth >= 4.
//   2. Real kernels through the session API (submit / factorize_batch /
//      FactorStream), with the streamed results checked bitwise against the
//      sequential replay.
//
// Assertions are enforced unless TILEDQR_STREAM_ASSERT=0 (the ctest smoke
// disables them: it shares a runner with the rest of the suite and also
// runs under TSan, where wall-clock margins are meaningless).
//
// Env knobs: TILEDQR_STREAM_COUNT (graphs per empty-body mode),
// TILEDQR_STREAM_N, TILEDQR_STREAM_NB, TILEDQR_THREADS, TILEDQR_REPS,
// TILEDQR_QUICK, TILEDQR_STREAM_ASSERT, TILEDQR_BENCH_JSON (output path,
// default BENCH_streaming.json).
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "core/qr_session.hpp"
#include "matrix/generate.hpp"
#include "obs/schedule_report.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

using namespace tiledqr;

namespace {

// ------------------------------------------- empty-body scheduling overhead --

struct OverheadRow {
  int depth = 0;
  double per_matrix_us = 0.0;  ///< us per graph, one submission per graph
  double fused_us = 0.0;       ///< us per graph, one submission per depth-burst
  double streamed_us = 0.0;    ///< us per graph, one graft per depth-burst
};

/// Per-request promise machinery of one fused burst — exactly what
/// submit_batch / FactorStream do per component: noop "kernels" plus the
/// per-part sentinel decrement, with the last task of each part fulfilling
/// that request's promise. Keeping the promises in the measurement mirrors
/// the serving API: every mode hands its caller one future per request.
struct SentinelBurst {
  explicit SentinelBurst(const core::FusedPlan& fused) : fused(&fused) {
    const size_t parts = size_t(fused.part_count());
    remaining = std::vector<std::atomic<std::int32_t>>(parts);
    promises.resize(parts);
    for (size_t i = 0; i < parts; ++i)
      remaining[i].store(fused.part_size(int(i)), std::memory_order_relaxed);
  }
  void body(std::int32_t idx) {
    const size_t part = size_t(fused->part_of(idx));
    if (remaining[part].fetch_sub(1, std::memory_order_acq_rel) == 1)
      promises[part].set_value();
  }
  const core::FusedPlan* fused;
  std::vector<std::atomic<std::int32_t>> remaining;
  std::vector<std::promise<void>> promises;
};

/// All three modes serve the same `count` noop requests arriving in bursts
/// of `depth`, each request observed through its own future (the serving-API
/// contract). The batch server shapes — per-matrix and fixed-fused — must
/// drain each burst before accepting the next (that boundary is what bounds
/// a batch server's queue, and is exactly PR 2's measurement protocol); the
/// streamed mode grafts every burst onto the live submission and never
/// waits until the end. The measured difference is therefore scheduling
/// machinery plus the batch-boundary drains the stream exists to remove.
/// Best-of-`reps`: min is the stable statistic on a shared host.
OverheadRow run_overhead(core::PlanCache& cache, runtime::ThreadPool& pool, int p, int q,
                         int depth, int count, int reps) {
  OverheadRow row;
  row.depth = depth;
  auto noop = [](std::int32_t) {};
  const trees::TreeConfig tree{};
  auto plan = cache.get(p, q, tree);
  auto fused = cache.get_fused(p, q, tree, depth);  // warmed outside the timers
  const int bursts = std::max(1, count / depth);

  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    std::vector<std::future<void>> futures;
    futures.reserve(size_t(depth));
    WallTimer timer;
    for (int b = 0; b < bursts; ++b) {
      futures.clear();
      for (int d = 0; d < depth; ++d)
        futures.push_back(pool.submit(plan->graph, noop,
                                      runtime::SchedulePriority::CriticalPath, 0, nullptr,
                                      &plan->ranks));
      for (auto& f : futures) f.get();  // batch boundary: drain before the next burst
    }
    best = best < 0 ? timer.seconds() : std::min(best, timer.seconds());
  }
  row.per_matrix_us = best * 1e6 / double(bursts * depth);

  best = -1.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    for (int b = 0; b < bursts; ++b) {
      SentinelBurst state(*fused);
      std::vector<std::future<void>> futures;
      for (auto& p2 : state.promises) futures.push_back(p2.get_future());
      pool.submit(
          fused->component_graph(), [&state](std::int32_t idx) { state.body(idx); },
          [](std::exception_ptr) {}, runtime::SchedulePriority::CriticalPath, 0, nullptr,
          &fused->component_ranks(), fused->copies());
      for (auto& f : futures) f.get();  // batch boundary: drain before the next burst
    }
    best = best < 0 ? timer.seconds() : std::min(best, timer.seconds());
  }
  row.fused_us = best * 1e6 / double(bursts * depth);

  best = -1.0;
  for (int r = 0; r < reps; ++r) {
    std::vector<std::unique_ptr<SentinelBurst>> states;
    std::vector<std::future<void>> futures;
    futures.reserve(size_t(bursts) * size_t(depth));
    auto stream = pool.open_stream();
    WallTimer timer;
    // One live submission for the whole run; each burst grafts one fused
    // component onto it and the server thread moves straight on — no drain
    // until everything has been accepted (the stream's backpressure is its
    // pending bound, not a batch boundary).
    for (int b = 0; b < bursts; ++b) {
      states.push_back(std::make_unique<SentinelBurst>(*fused));
      auto* state = states.back().get();
      for (auto& p2 : state->promises) futures.push_back(p2.get_future());
      stream.append(
          fused->component_graph(), [state](std::int32_t idx) { state->body(idx); }, nullptr,
          nullptr, &fused->component_ranks(), fused->copies());
    }
    for (auto& f : futures) f.get();
    best = best < 0 ? timer.seconds() : std::min(best, timer.seconds());
    stream.close();
    stream.wait();
  }
  row.streamed_us = best * 1e6 / double(bursts * depth);
  return row;
}

// ------------------------------------------------- real kernels, session API --

struct ModeResult {
  double seconds = 0.0;
  double per_sec = 0.0;
};

struct Workload {
  std::vector<TileMatrix<double>> tiles;
  core::Options opt;
};

Workload make_workload(int count, std::int64_t n, int nb, int ib) {
  Workload w;
  w.opt.tree = trees::TreeConfig{};  // pinned: comparing execution, not trees
  w.opt.nb = nb;
  w.opt.ib = std::min(ib, nb);
  w.tiles.reserve(size_t(count));
  for (int i = 0; i < count; ++i) {
    auto dense = random_matrix<double>(n, n, 0xF00D + unsigned(i));
    w.tiles.push_back(TileMatrix<double>::from_dense(dense.view(), nb));
  }
  return w;
}

/// Batch-server baseline: requests arrive in bursts of `depth`; each burst
/// is submitted per-matrix and drained before the next (same boundary rule
/// as the overhead section — a batch server bounds its queue that way).
ModeResult run_per_matrix(core::QrSession& session, const Workload& w, int depth, int reps) {
  ModeResult out;
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    for (size_t begin = 0; begin < w.tiles.size(); begin += size_t(depth)) {
      const size_t end = std::min(w.tiles.size(), begin + size_t(depth));
      std::vector<std::future<core::TiledQr<double>>> futures;
      for (size_t i = begin; i < end; ++i)
        futures.push_back(session.submit(TileMatrix<double>(w.tiles[i]), w.opt));
      for (auto& f : futures) (void)f.get();
    }
    double sec = timer.seconds();
    if (best < 0.0 || sec < best) best = sec;
  }
  out.seconds = best;
  out.per_sec = double(w.tiles.size()) / best;
  return out;
}

/// Fixed-batch fusion with the same per-burst drain.
ModeResult run_fixed_batches(core::QrSession& session, const Workload& w, int depth, int reps) {
  ModeResult out;
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    for (size_t begin = 0; begin < w.tiles.size(); begin += size_t(depth)) {
      const size_t end = std::min(w.tiles.size(), begin + size_t(depth));
      std::vector<TileMatrix<double>> chunk(w.tiles.begin() + long(begin),
                                            w.tiles.begin() + long(end));
      auto qrs = session.factorize_batch(std::move(chunk), w.opt);
      (void)qrs;
    }
    double sec = timer.seconds();
    if (best < 0.0 || sec < best) best = sec;
  }
  out.seconds = best;
  out.per_sec = double(w.tiles.size()) / best;
  return out;
}

ModeResult run_streamed(core::QrSession& session, const Workload& w, int depth, int reps) {
  ModeResult out;
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    core::QrSession::StreamOptions sopt;
    sopt.nb = w.opt.nb;
    sopt.ib = w.opt.ib;
    sopt.tree = w.opt.tree;
    sopt.max_pending = std::max(32, depth);
    auto stream = session.stream<double>(sopt);
    WallTimer timer;
    std::vector<std::future<core::TiledQr<double>>> futures;
    futures.reserve(w.tiles.size());
    // Corked per burst of `depth` (a server draining its accept queue), but
    // the stream never waits between bursts: grafts land on the live
    // submission while earlier generations still drain.
    for (size_t begin = 0; begin < w.tiles.size(); begin += size_t(depth)) {
      const size_t end = std::min(w.tiles.size(), begin + size_t(depth));
      stream.cork();
      for (size_t i = begin; i < end; ++i)
        futures.push_back(stream.push(TileMatrix<double>(w.tiles[i])));
      stream.uncork();
    }
    for (auto& f : futures) (void)f.get();
    double sec = timer.seconds();
    stream.close();
    if (best < 0.0 || sec < best) best = sec;
  }
  out.seconds = best;
  out.per_sec = double(w.tiles.size()) / best;
  return out;
}

// ------------------------------------------------------ multicore scaling --

/// One point of the streamed scaling sweep: the real-kernel workload pushed
/// through a FactorStream on a fresh session with `threads` workers,
/// component-affine stealing on or off (TILEDQR_AFFINE_STEAL — affine
/// dealing only applies to stream components, which is why this sweep lives
/// here and the pinning sweep lives in bench_serving_throughput). Steal
/// contention and the home/foreign locality split ride along so every
/// throughput point carries its scheduler evidence.
struct StreamScalingRow {
  int threads = 0;
  bool affine = true;
  double per_sec = 0.0;
  double speedup_vs_1t = 0.0;
  long tasks_stolen = 0;
  long steal_cas_retries = 0;
  long empty_steal_probes = 0;
  long tasks_home = 0;
  long tasks_foreign = 0;
  std::int64_t steal_lat_p50_ns = 0;  ///< successful-steal scan latency, bucket upper bound
  std::int64_t steal_lat_p95_ns = 0;
};

StreamScalingRow run_stream_scaling_point(const Workload& w, int threads, bool affine,
                                          int depth, int reps) {
  setenv("TILEDQR_AFFINE_STEAL", affine ? "1" : "0", 1);
  core::QrSession session(core::QrSession::Config{threads});
  StreamScalingRow row;
  row.threads = threads;
  row.affine = affine;
  row.per_sec = run_streamed(session, w, depth, reps).per_sec;
  const auto stats = session.pool_stats();
  row.tasks_stolen = stats.tasks_stolen;
  row.steal_cas_retries = stats.steal_cas_retries;
  row.empty_steal_probes = stats.empty_steal_probes;
  row.tasks_home = stats.tasks_home;
  row.tasks_foreign = stats.tasks_foreign;
  row.steal_lat_p50_ns = stats.steal_latency_quantile_ns(0.50);
  row.steal_lat_p95_ns = stats.steal_latency_quantile_ns(0.95);
  return row;
}

// ---------------------------------------------------------- serving QoS ----

/// Backpressure: one producer pushes the whole workload through a stream
/// whose admission is bounded at `max_queued` (Block overflow: the producer
/// parks on the retirement condvar when the bound is hit). Reports the
/// throughput cost of the bound and the observed high-water mark — which
/// must never exceed the bound, the memory-safety contract of Block.
struct BackpressureRow {
  int max_queued = 0;  ///< 0 = unbounded (the pre-QoS admission policy)
  double seconds = 0.0;
  double per_sec = 0.0;
  long peak_unresolved = 0;
};

BackpressureRow run_backpressure(core::QrSession& session, const Workload& w, int max_queued,
                                 int reps) {
  BackpressureRow row;
  row.max_queued = max_queued;
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    core::QrSession::StreamOptions sopt;
    sopt.nb = w.opt.nb;
    sopt.ib = w.opt.ib;
    sopt.tree = w.opt.tree;
    sopt.max_queued = max_queued;
    sopt.overflow = core::QrSession::StreamOverflow::Block;
    auto stream = session.stream<double>(sopt);
    WallTimer timer;
    std::vector<std::future<core::TiledQr<double>>> futures;
    futures.reserve(w.tiles.size());
    for (const auto& tiles : w.tiles) futures.push_back(stream.push(TileMatrix<double>(tiles)));
    for (auto& f : futures) (void)f.get();
    double sec = timer.seconds();
    row.peak_unresolved = std::max(row.peak_unresolved, stream.stats().peak_unresolved);
    stream.close();
    if (best < 0.0 || sec < best) best = sec;
  }
  row.seconds = best;
  row.per_sec = double(w.tiles.size()) / best;
  return row;
}

/// Fairness: two clients race equal workloads through their own streams on
/// ONE session pool. With the pool-level graft rotation and per-submission
/// worker queues, neither client's backlog can monopolize the workers, so
/// both finish at about the same time — `imbalance` (slower/faster makespan)
/// near 1.0. A FIFO-piling scheduler would let one client finish in roughly
/// half the wall clock of the other (imbalance near 2).
struct FairnessResult {
  double client_seconds[2] = {0.0, 0.0};
  double imbalance = 0.0;
};

FairnessResult run_fairness(core::QrSession& session, const Workload& w, int per_client,
                            int reps) {
  FairnessResult out;
  double best_imbalance = -1.0;
  for (int r = 0; r < reps; ++r) {
    double seconds[2] = {0.0, 0.0};
    std::vector<std::thread> clients;
    for (int cid = 0; cid < 2; ++cid) {
      clients.emplace_back([&, cid] {
        core::QrSession::StreamOptions sopt;
        sopt.nb = w.opt.nb;
        sopt.ib = w.opt.ib;
        sopt.tree = w.opt.tree;
        auto stream = session.stream<double>(sopt);
        WallTimer timer;
        std::vector<std::future<core::TiledQr<double>>> futures;
        for (int i = 0; i < per_client; ++i)
          futures.push_back(
              stream.push(TileMatrix<double>(w.tiles[size_t(i) % w.tiles.size()])));
        for (auto& f : futures) (void)f.get();
        seconds[cid] = timer.seconds();
        stream.close();
      });
    }
    for (auto& th : clients) th.join();
    const double imbalance =
        std::max(seconds[0], seconds[1]) / std::max(1e-12, std::min(seconds[0], seconds[1]));
    if (best_imbalance < 0.0 || imbalance < best_imbalance) {
      best_imbalance = imbalance;
      out.client_seconds[0] = seconds[0];
      out.client_seconds[1] = seconds[1];
    }
  }
  out.imbalance = best_imbalance;
  return out;
}

/// Streamed results must be bitwise identical to the sequential replay (the
/// acceptance bar for streaming fusion, same as batch fusion).
bool verify_streamed_bitwise(core::QrSession& session, const Workload& w, int check_count) {
  core::QrSession::StreamOptions sopt;
  sopt.nb = w.opt.nb;
  sopt.ib = w.opt.ib;
  sopt.tree = w.opt.tree;
  auto stream = session.stream<double>(sopt);
  stream.cork();
  std::vector<std::future<core::TiledQr<double>>> futures;
  const int limit = std::min<int>(check_count, int(w.tiles.size()));
  for (int i = 0; i < limit; ++i) futures.push_back(stream.push(TileMatrix<double>(w.tiles[size_t(i)])));
  stream.uncork();
  stream.close();
  for (int i = 0; i < limit; ++i) {
    TileMatrix<double> a = w.tiles[size_t(i)];
    auto plan = core::make_plan(a.mt(), a.nt(), *w.opt.tree);
    core::TStore<double> ts(a.mt(), a.nt(), w.opt.ib, a.nb());
    core::TStore<double> t2s(a.mt(), a.nt(), w.opt.ib, a.nb());
    runtime::execute_spawn(
        plan.graph,
        [&](std::int32_t idx) {
          core::run_task_kernels(plan.graph.tasks[size_t(idx)], a, ts, t2s, w.opt.ib);
        },
        1);
    auto want = a.to_dense();
    auto got = futures[size_t(i)].get().factors().to_dense();
    for (std::int64_t j = 0; j < want.cols(); ++j)
      for (std::int64_t r = 0; r < want.rows(); ++r)
        if (got(r, j) != want(r, j)) return false;
  }
  return true;
}

}  // namespace

int main() {
  bench::Knobs knobs;
  const int threads = knobs.threads > 0 ? knobs.threads : default_thread_count();
  const int count = int(env_long("TILEDQR_STREAM_COUNT", knobs.quick ? 128 : 512));
  const std::int64_t small_n = env_long("TILEDQR_STREAM_N", knobs.quick ? 256 : 512);
  const int nb = int(env_long("TILEDQR_STREAM_NB", 128));
  const bool enforce = env_flag("TILEDQR_STREAM_ASSERT", true);
  const std::vector<int> depths = {1, 4, 16, 64};

  std::printf("=== Streaming fusion: grafts vs fixed batches vs per-matrix ===\n");
  std::printf("threads=%d overhead-graphs=%d real=%dx %lldx%lld (nb=%d) reps=%d\n\n", threads,
              count, knobs.quick ? 16 : 64, (long long)small_n, (long long)small_n, nb,
              knobs.reps);

  // ---- 1. empty-body scheduling overhead -------------------------------- --
  // Two DAG sizes: the tiny 2x2-tile grid is the overhead-bound regime the
  // streaming machinery targets (per-graph scheduling cost dominates the
  // handful of tasks) and carries the acceptance assertions; the workload's
  // own grid is reported alongside so the amortized regime is visible too.
  const int tile_p = int((small_n + nb - 1) / nb);
  core::PlanCache cache;
  runtime::ThreadPool pool(threads);
  std::vector<int> grids{2};
  if (tile_p != 2) grids.push_back(tile_p);
  std::vector<OverheadRow> rows;       // acceptance grid (2x2)
  std::vector<OverheadRow> big_rows;   // workload grid
  for (int grid : grids) {
    TextTable to(stringf("scheduling overhead, %dx%d-tile DAG, empty bodies (us/graph)%s", grid,
                         grid, grid == 2 ? " [acceptance grid]" : ""));
    to.set_header({"depth", "per-matrix", "fixed-fused", "streamed", "pm/st", "st/fu"});
    for (int depth : depths) {
      auto row = run_overhead(cache, pool, grid, grid, depth, count, std::max(6, knobs.reps));
      (grid == 2 ? rows : big_rows).push_back(row);
      to.add_row({stringf("%d", row.depth), stringf("%.1f", row.per_matrix_us),
                  stringf("%.1f", row.fused_us), stringf("%.1f", row.streamed_us),
                  stringf("%.2fx", row.per_matrix_us / row.streamed_us),
                  stringf("%.2f", row.streamed_us / row.fused_us)});
    }
    bench::emit(to, stringf("streaming_overhead_p%d", grid), knobs);
  }

  // ---- 2. real kernels through the session API -------------------------- --
  auto w = make_workload(knobs.quick ? 16 : 64, small_n, nb, knobs.ib);
  const int real_depth = 8;
  core::QrSession session(core::QrSession::Config{threads});
  auto per_matrix = run_per_matrix(session, w, real_depth, knobs.reps);
  auto fixed = run_fixed_batches(session, w, real_depth, knobs.reps);
  auto streamed = run_streamed(session, w, real_depth, knobs.reps);
  const bool bitwise = verify_streamed_bitwise(session, w, knobs.quick ? 2 : 4);

  TextTable tr(stringf("%zu x %lldx%lld QRs (nb=%d, %d threads, burst depth %d)",
                       w.tiles.size(), (long long)small_n, (long long)small_n, nb, threads,
                       real_depth));
  tr.set_header({"mode", "seconds", "fact/s", "vs per-matrix"});
  tr.add_row({"per-matrix", stringf("%.4f", per_matrix.seconds),
              stringf("%.2f", per_matrix.per_sec), "1.00x"});
  tr.add_row({"fixed-fused", stringf("%.4f", fixed.seconds), stringf("%.2f", fixed.per_sec),
              stringf("%.2fx", per_matrix.seconds / fixed.seconds)});
  tr.add_row({"streamed", stringf("%.4f", streamed.seconds), stringf("%.2f", streamed.per_sec),
              stringf("%.2fx", per_matrix.seconds / streamed.seconds)});
  bench::emit(tr, "streaming_real", knobs);
  std::printf("streamed results bitwise identical to sequential replay: %s\n\n",
              bitwise ? "yes" : "NO (BUG)");

  // ---- 3. serving QoS: backpressure ------------------------------------- --
  // Small-matrix workload (the overhead-bound regime QoS matters for): how
  // much throughput a bounded admission window costs, and proof the Block
  // bound holds. max_queued=0 is the pre-QoS unbounded baseline.
  auto wq = make_workload(knobs.quick ? 24 : 64, 2 * nb, nb, knobs.ib);
  std::vector<BackpressureRow> bp_rows;
  bool bounds_hold = true;
  {
    TextTable tb(stringf("backpressure: %zu x %dx%d QRs, Block overflow (threads=%d)",
                         wq.tiles.size(), int(2 * nb), int(2 * nb), threads));
    tb.set_header({"max_queued", "seconds", "fact/s", "peak unresolved", "bound held"});
    for (int max_queued : {0, 8, 2}) {
      auto row = run_backpressure(session, wq, max_queued, knobs.reps);
      bp_rows.push_back(row);
      const bool held = max_queued == 0 || row.peak_unresolved <= max_queued;
      bounds_hold = bounds_hold && held;
      tb.add_row({max_queued == 0 ? "unbounded" : stringf("%d", max_queued),
                  stringf("%.4f", row.seconds), stringf("%.2f", row.per_sec),
                  stringf("%ld", row.peak_unresolved), held ? "yes" : "NO (BUG)"});
    }
    bench::emit(tb, "streaming_backpressure", knobs);
  }

  // ---- 4. serving QoS: multi-stream fairness ----------------------------- --
  auto fair = run_fairness(session, wq, knobs.quick ? 16 : 48, std::max(2, knobs.reps));
  {
    TextTable tf(stringf("fairness: 2 clients x %d QRs, own streams, one pool (threads=%d)",
                         knobs.quick ? 16 : 48, threads));
    tf.set_header({"client", "seconds"});
    tf.add_row({"A", stringf("%.4f", fair.client_seconds[0])});
    tf.add_row({"B", stringf("%.4f", fair.client_seconds[1])});
    tf.add_row({"imbalance", stringf("%.2fx", fair.imbalance)});
    bench::emit(tf, "streaming_fairness", knobs);
  }
  std::printf("\n");

  // ---- 5. multicore scaling: affine vs free stealing -------------------- --
  // The real-kernel workload streamed across worker counts, with
  // component-affine dealing on (default: each graft dealt whole to a home
  // worker, stolen only when others run dry) and off (spread round-robin).
  // Worker counts above hardware_threads are oversubscribed — recorded
  // anyway so the curve is honest about the host.
  const char* saved_affine = std::getenv("TILEDQR_AFFINE_STEAL");
  std::vector<StreamScalingRow> scaling;
  {
    const int scaling_reps = std::max(2, knobs.reps);
    std::printf("multicore scaling (streamed, %zu x %lldx%lld nb=%d, depth %d, best of %d):\n",
                w.tiles.size(), (long long)small_n, (long long)small_n, nb, real_depth,
                scaling_reps);
    std::printf("  %7s %6s %10s %9s %8s %8s %8s %9s %9s %9s %9s\n", "threads", "affine", "fact/s",
                "speedup", "stolen", "cas_ret", "empty", "home", "foreign", "st_p50us",
                "st_p95us");
    for (int t : {1, 2, 4, 8}) {
      for (bool affine : {true, false}) {
        auto row = run_stream_scaling_point(w, t, affine, real_depth, scaling_reps);
        const double base =
            scaling.empty() ? row.per_sec : scaling.front().per_sec;  // 1t affine
        row.speedup_vs_1t = row.per_sec / base;
        std::printf("  %7d %6s %10.1f %8.2fx %8ld %8ld %8ld %9ld %9ld %9.1f %9.1f\n",
                    row.threads, row.affine ? "yes" : "no", row.per_sec, row.speedup_vs_1t,
                    row.tasks_stolen, row.steal_cas_retries, row.empty_steal_probes,
                    row.tasks_home, row.tasks_foreign, double(row.steal_lat_p50_ns) / 1e3,
                    double(row.steal_lat_p95_ns) / 1e3);
        scaling.push_back(row);
      }
    }
    saved_affine ? setenv("TILEDQR_AFFINE_STEAL", saved_affine, 1)
                 : unsetenv("TILEDQR_AFFINE_STEAL");
  }
  std::printf("\n");

  // ---- schedule report (when traced) ------------------------------------ --
  // Under TILEDQR_TRACE the whole run above was recorded; summarize where
  // the workers spent their time before the exporter writes the raw events.
  {
    auto& tracer = obs::Tracer::instance();
    if (tracer.enabled()) {
      auto report = obs::format_schedule_report(obs::build_schedule_report(tracer));
      if (!report.empty()) std::printf("%s\n", report.c_str());
    }
  }

  // ---- acceptance ------------------------------------------------------- --
  // On the overhead-bound grid, at burst depth >= 4: streamed grafts ride
  // the same cached FusedPlans as fixed batches but skip the batch-boundary
  // drains, so they must be within 10% of fused dispatch cost (they are in
  // fact cheaper) and >= 1.3x cheaper than per-matrix submissions.
  bool ok = bitwise && bounds_hold;
  for (const auto& row : rows) {
    if (row.depth < 4) continue;
    const bool near_fused = row.streamed_us <= 1.10 * row.fused_us;
    const bool beats_per_matrix = row.per_matrix_us >= 1.3 * row.streamed_us;
    std::printf("depth %2d: streamed within 10%% of fused: %s; >=1.3x vs per-matrix: %s\n",
                row.depth, near_fused ? "yes" : "NO", beats_per_matrix ? "yes" : "NO");
    ok = ok && near_fused && beats_per_matrix;
  }
  std::printf("Block backpressure bound held at every max_queued: %s\n",
              bounds_hold ? "yes" : "NO (BUG)");
  std::printf("%s\n\n", ok ? "ACCEPTANCE: pass" : enforce ? "ACCEPTANCE: FAIL"
                                                          : "ACCEPTANCE: fail (not enforced)");

  // ---- JSON record ------------------------------------------------------ --
  auto json_path = env_string("TILEDQR_BENCH_JSON").value_or("BENCH_streaming.json");
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    json << "{\n"
         << "  \"bench\": \"streaming\",\n"
         << stringf("  \"host\": {\"hardware_threads\": %u, \"bench_threads\": %d},\n",
                    std::thread::hardware_concurrency(), threads)
         << stringf("  \"overhead_graphs\": %d,\n", count);
    auto emit_rows = [&json](const char* key, int grid, const std::vector<OverheadRow>& rs) {
      json << stringf("  \"%s\": {\"p\": %d, \"q\": %d, \"us_per_graph\": [", key, grid, grid);
      for (size_t i = 0; i < rs.size(); ++i) {
        const auto& row = rs[i];
        json << stringf("%s{\"depth\": %d, \"per_matrix\": %.1f, \"fused\": %.1f, "
                        "\"streamed\": %.1f, \"per_matrix_over_streamed\": %.2f, "
                        "\"streamed_over_fused\": %.2f}",
                        i ? ", " : "", row.depth, row.per_matrix_us, row.fused_us,
                        row.streamed_us, row.per_matrix_us / row.streamed_us,
                        row.streamed_us / row.fused_us);
      }
      json << "]},\n";
    };
    emit_rows("overhead_acceptance_grid", 2, rows);
    if (!big_rows.empty()) emit_rows("overhead_workload_grid", tile_p, big_rows);
    json
         << stringf("  \"real\": {\"count\": %zu, \"n\": %lld, \"nb\": %d, \"depth\": %d,\n",
                    w.tiles.size(), (long long)small_n, nb, real_depth)
         << stringf("    \"per_matrix\": {\"seconds\": %.6f, \"per_sec\": %.3f},\n",
                    per_matrix.seconds, per_matrix.per_sec)
         << stringf("    \"fixed_fused\": {\"seconds\": %.6f, \"per_sec\": %.3f},\n",
                    fixed.seconds, fixed.per_sec)
         << stringf("    \"streamed\": {\"seconds\": %.6f, \"per_sec\": %.3f},\n",
                    streamed.seconds, streamed.per_sec)
         << stringf("    \"streamed_bitwise_identical\": %s},\n", bitwise ? "true" : "false");
    json << stringf("  \"backpressure\": {\"count\": %zu, \"n\": %d, \"overflow\": \"block\", "
                    "\"rows\": [",
                    wq.tiles.size(), int(2 * nb));
    for (size_t i = 0; i < bp_rows.size(); ++i) {
      const auto& row = bp_rows[i];
      json << stringf("%s{\"max_queued\": %d, \"seconds\": %.6f, \"per_sec\": %.3f, "
                      "\"peak_unresolved\": %ld}",
                      i ? ", " : "", row.max_queued, row.seconds, row.per_sec,
                      row.peak_unresolved);
    }
    json << stringf("], \"bounds_held\": %s},\n", bounds_hold ? "true" : "false")
         << stringf("  \"fairness\": {\"clients\": 2, \"per_client\": %d, "
                    "\"client_seconds\": [%.6f, %.6f], \"imbalance\": %.3f},\n",
                    knobs.quick ? 16 : 48, fair.client_seconds[0], fair.client_seconds[1],
                    fair.imbalance);
    json << "  \"multicore_scaling\": [";
    for (size_t i = 0; i < scaling.size(); ++i) {
      const auto& r = scaling[i];
      json << stringf("%s\n    {\"threads\": %d, \"affine_steal\": %s, \"per_sec\": %.3f, "
                      "\"speedup_vs_1t\": %.3f, \"tasks_stolen\": %ld, "
                      "\"steal_cas_retries\": %ld, \"empty_steal_probes\": %ld, "
                      "\"tasks_home\": %ld, \"tasks_foreign\": %ld, "
                      "\"steal_latency_p50_ns\": %lld, \"steal_latency_p95_ns\": %lld}",
                      i ? "," : "", r.threads, r.affine ? "true" : "false", r.per_sec,
                      r.speedup_vs_1t, r.tasks_stolen, r.steal_cas_retries,
                      r.empty_steal_probes, r.tasks_home, r.tasks_foreign,
                      (long long)r.steal_lat_p50_ns, (long long)r.steal_lat_p95_ns);
    }
    json << "],\n";
    json << stringf("  \"acceptance_pass\": %s\n", ok ? "true" : "false") << "}\n";
    std::printf("(json written to %s)\n", json_path.c_str());
  }
  return ok || !enforce ? 0 : 1;
}
