// Figures 7 and 8: overhead of every algorithm (TS and TT families) with
// respect to Greedy, theoretical and experimental.
#include <complex>

#include "bench_experimental.hpp"
#include "sim/critical_path.hpp"
#include "trees/generators.hpp"

using namespace tiledqr;

namespace {

void theoretical(const bench::Knobs& knobs) {
  const int p = knobs.p;
  TextTable t(stringf("Figure 7a/8a: critical-path overhead vs Greedy, p = %d", p));
  t.set_header({"q", "FlatTree(TS)", "PlasmaTree(TS,best)", "FlatTree(TT)",
                "PlasmaTree(TT,best)", "Fibonacci"});
  for (int q = 1; q <= p; ++q) {
    if (knobs.quick ? (q > 8 && q % 8 != 0) : (q > 10 && q % 5 != 0 && q != p)) continue;
    using trees::KernelFamily;
    long greedy = sim::critical_path_units(p, q, trees::greedy_tree(p, q));
    auto ratio = [&](long cp) { return stringf("%.4f", double(cp) / double(greedy)); };
    t.add_row({std::to_string(q),
               ratio(sim::critical_path_units(p, q, trees::flat_tree(p, q, KernelFamily::TS))),
               ratio(core::best_plasma_bs(p, q, KernelFamily::TS).critical_path),
               ratio(sim::critical_path_units(p, q, trees::flat_tree(p, q, KernelFamily::TT))),
               ratio(core::best_plasma_bs(p, q, KernelFamily::TT).critical_path),
               ratio(sim::critical_path_units(p, q, trees::fibonacci_tree(p, q)))});
  }
  bench::emit(t, "fig7_8_theoretical_overhead_all", knobs);
}

template <typename T>
void experimental(const char* precision, const bench::Knobs& knobs) {
  TextTable t(stringf("Figure 7b-c/8b-c: time overhead vs Greedy (%s)", precision));
  t.set_header({"q", "FlatTree(TS)", "PlasmaTree(TS,best)", "FlatTree(TT)",
                "PlasmaTree(TT,best)", "Fibonacci", "Greedy"});
  for (int q : bench::experimental_q_values(knobs.p, knobs.quick)) {
    auto e = bench::run_sweep_point<T>(knobs, q, /*include_ts=*/true);
    auto ratio = [&](const core::RunRecord& r) {
      return stringf("%.4f", r.seconds / e.greedy.seconds);
    };
    t.add_row({std::to_string(q), ratio(e.flat_ts), ratio(e.plasma_ts), ratio(e.flat),
               ratio(e.plasma), ratio(e.fibonacci), "1.0000"});
  }
  bench::emit(t, std::string("fig7_8_experimental_overhead_") + precision, knobs);
}

}  // namespace

int main() {
  bench::Knobs knobs;
  bench::banner("Figures 7/8: overhead vs Greedy, all kernels", knobs);
  theoretical(knobs);
  bench::Knobs fast = knobs;
  fast.reps = 1;
  experimental<std::complex<double>>("double_complex", fast);
  experimental<double>("double", fast);
  return 0;
}
