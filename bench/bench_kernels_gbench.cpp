// google-benchmark microbenchmarks for the six tile kernels (double and
// double complex), reporting wall time and effective GFLOP/s.
#include <benchmark/benchmark.h>

#include <complex>

#include "kernels/kernels.hpp"
#include "matrix/generate.hpp"

using namespace tiledqr;
using kernels::ApplyTrans;
using kernels::KernelKind;

namespace {

template <typename T>
struct Operands {
  Matrix<T> a1, a2, a2tri, c1, c2, t;
  explicit Operands(int nb, int ib)
      : a1(nb, nb), a2(nb, nb), a2tri(nb, nb), c1(nb, nb), c2(nb, nb), t(ib, nb) {
    randomize(a1.view(), 1);
    randomize(a2.view(), 2);
    randomize(a2tri.view(), 3);
    randomize(c1.view(), 4);
    randomize(c2.view(), 5);
    for (std::int64_t j = 0; j < nb; ++j)
      for (std::int64_t i = j + 1; i < nb; ++i) {
        a1(i, j) = T(0);
        a2tri(i, j) = T(0);
      }
  }
};

template <typename T, KernelKind K>
void BM_kernel(benchmark::State& state) {
  const int nb = int(state.range(0));
  const int ib = std::min<int>(32, nb);
  Operands<T> base(nb, ib);
  for (auto _ : state) {
    state.PauseTiming();
    Operands<T> op = base;  // fresh operands each iteration
    state.ResumeTiming();
    switch (K) {
      case KernelKind::GEQRT: kernels::geqrt(ib, op.a2.view(), op.t.view()); break;
      case KernelKind::UNMQR:
        kernels::unmqr(ApplyTrans::ConjTrans, ib, op.a2.view(), op.t.view(), op.c1.view());
        break;
      case KernelKind::TSQRT: kernels::tsqrt(ib, op.a1.view(), op.a2.view(), op.t.view()); break;
      case KernelKind::TSMQR:
        kernels::tsmqr(ApplyTrans::ConjTrans, ib, op.a2.view(), op.t.view(), op.c1.view(),
                       op.c2.view());
        break;
      case KernelKind::TTQRT:
        kernels::ttqrt(ib, op.a1.view(), op.a2tri.view(), op.t.view());
        break;
      case KernelKind::TTMQR:
        kernels::ttmqr(ApplyTrans::ConjTrans, ib, op.a1.view(), op.t.view(), op.c1.view(),
                       op.c2.view());
        break;
    }
    benchmark::ClobberMemory();
  }
  state.counters["GFLOP/s"] =
      benchmark::Counter(kernels::kernel_flops(K, nb, is_complex_v<T>) * 1e-9,
                         benchmark::Counter::kIsIterationInvariantRate);
}

#define TILEDQR_BENCH_KERNEL(T, NAME, KIND)                           \
  BENCHMARK_TEMPLATE(BM_kernel, T, KernelKind::KIND)                  \
      ->Name(NAME)                                                    \
      ->Arg(64)                                                       \
      ->Arg(128)                                                      \
      ->Unit(benchmark::kMicrosecond)

TILEDQR_BENCH_KERNEL(double, "d_geqrt", GEQRT);
TILEDQR_BENCH_KERNEL(double, "d_unmqr", UNMQR);
TILEDQR_BENCH_KERNEL(double, "d_tsqrt", TSQRT);
TILEDQR_BENCH_KERNEL(double, "d_tsmqr", TSMQR);
TILEDQR_BENCH_KERNEL(double, "d_ttqrt", TTQRT);
TILEDQR_BENCH_KERNEL(double, "d_ttmqr", TTMQR);
TILEDQR_BENCH_KERNEL(std::complex<double>, "z_geqrt", GEQRT);
TILEDQR_BENCH_KERNEL(std::complex<double>, "z_unmqr", UNMQR);
TILEDQR_BENCH_KERNEL(std::complex<double>, "z_tsqrt", TSQRT);
TILEDQR_BENCH_KERNEL(std::complex<double>, "z_tsmqr", TSMQR);
TILEDQR_BENCH_KERNEL(std::complex<double>, "z_ttqrt", TTQRT);
TILEDQR_BENCH_KERNEL(std::complex<double>, "z_ttmqr", TTMQR);

}  // namespace

BENCHMARK_MAIN();
