// Serving throughput: the regime the persistent runtime exists for.
//
// Four execution strategies over the same work:
//   spawn-per-call   — the seed behavior: re-plan the DAG and spawn/join a
//                      fresh std::thread pool for every factorization
//   pool-sequential  — persistent pool + plan cache, one factorization at a
//                      time (submit, wait, repeat)
//   pool-batch       — per-matrix submissions: all DAGs in flight at once,
//                      interleaved on the shared pool
//   pool-fused       — QrSession::factorize_batch: the whole batch fused
//                      into ONE DAG submission (cached fused plan + cached
//                      scheduling ranks, per-subgraph completion sentinels)
//
// A dedicated overhead section isolates the per-submission scheduling cost
// of fused vs per-matrix batches with empty task bodies, and the fused
// results are checked bitwise against the sequential per-matrix replay.
//
// Workloads: a batch of small QRs (default 64 x 512x512, nb = 128 — tiny
// 4x4-tile DAGs where scheduling overhead dominates) and one large QR
// (default 2048x2048; TILEDQR_LARGE_N=4096 for the paper-scale point).
//
// Emits a table and, unless TILEDQR_BENCH_JSON is empty, a JSON blob with
// the raw numbers (fact/sec, speedups, plan-cache hit rate) so CI and later
// PRs have a perf trajectory to compare against.
//
// Env knobs: TILEDQR_SERVE_COUNT, TILEDQR_SERVE_N, TILEDQR_SERVE_NB,
// TILEDQR_LARGE_N, TILEDQR_THREADS, TILEDQR_REPS, TILEDQR_QUICK,
// TILEDQR_BENCH_JSON (output path, default BENCH_serving.json).
#include <cstdlib>
#include <fstream>
#include <thread>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "core/qr_session.hpp"
#include "matrix/generate.hpp"
#include "obs/schedule_report.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

using namespace tiledqr;

namespace {

struct ModeResult {
  double seconds = 0.0;
  double per_sec = 0.0;
};

/// Pre-tiled inputs; every mode starts from a fresh copy of the same tiles,
/// so layout conversion cost is identical (and outside the timer).
struct Workload {
  std::vector<TileMatrix<double>> tiles;
  core::Options opt;
};

Workload make_workload(int count, std::int64_t n, int nb, int ib) {
  Workload w;
  // Pin the tree explicitly: the session batch paths autotune a disengaged
  // tree, and this bench compares execution strategies, not algorithms.
  w.opt.tree = trees::TreeConfig{};
  w.opt.nb = nb;
  w.opt.ib = std::min(ib, nb);
  w.tiles.reserve(size_t(count));
  for (int i = 0; i < count; ++i) {
    auto dense = random_matrix<double>(n, n, 0xBEEF + unsigned(i));
    w.tiles.push_back(TileMatrix<double>::from_dense(dense.view(), nb));
  }
  return w;
}

/// Seed behavior: plan from scratch and spawn/join threads for every call.
ModeResult run_spawn_per_call(const Workload& w, int threads, int reps) {
  ModeResult out;
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    for (const auto& t0 : w.tiles) {
      TileMatrix<double> a = t0;
      auto plan = core::make_plan(a.mt(), a.nt(), *w.opt.tree);
      core::TStore<double> ts(a.mt(), a.nt(), w.opt.ib, a.nb());
      core::TStore<double> t2s(a.mt(), a.nt(), w.opt.ib, a.nb());
      runtime::execute_spawn(
          plan.graph,
          [&](std::int32_t idx) {
            core::run_task_kernels(plan.graph.tasks[size_t(idx)], a, ts, t2s, w.opt.ib);
          },
          threads);
    }
    double sec = timer.seconds();
    if (best < 0.0 || sec < best) best = sec;
  }
  out.seconds = best;
  out.per_sec = double(w.tiles.size()) / best;
  return out;
}

/// Persistent pool + plan cache, one factorization at a time.
ModeResult run_pool_sequential(core::QrSession& session, const Workload& w, int reps) {
  ModeResult out;
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    for (const auto& t0 : w.tiles) {
      auto qr = session.submit(TileMatrix<double>(t0), w.opt).get();
      (void)qr;
    }
    double sec = timer.seconds();
    if (best < 0.0 || sec < best) best = sec;
  }
  out.seconds = best;
  out.per_sec = double(w.tiles.size()) / best;
  return out;
}

/// Persistent pool + plan cache, all DAGs in flight at once.
ModeResult run_pool_batch(core::QrSession& session, const Workload& w, int reps) {
  ModeResult out;
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    std::vector<std::future<core::TiledQr<double>>> futures;
    futures.reserve(w.tiles.size());
    for (const auto& t0 : w.tiles) futures.push_back(session.submit(TileMatrix<double>(t0), w.opt));
    for (auto& f : futures) (void)f.get();
    double sec = timer.seconds();
    if (best < 0.0 || sec < best) best = sec;
  }
  out.seconds = best;
  out.per_sec = double(w.tiles.size()) / best;
  return out;
}

/// The whole batch fused into one DAG submission.
ModeResult run_pool_fused(core::QrSession& session, const Workload& w, int reps) {
  ModeResult out;
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    std::vector<TileMatrix<double>> copies(w.tiles.begin(), w.tiles.end());
    auto qrs = session.factorize_batch(std::move(copies), w.opt);
    (void)qrs;
    double sec = timer.seconds();
    if (best < 0.0 || sec < best) best = sec;
  }
  out.seconds = best;
  out.per_sec = double(w.tiles.size()) / best;
  return out;
}

/// Fused results must be bitwise identical to the sequential per-matrix
/// execute_spawn replay (the acceptance bar for DAG fusion).
bool verify_fused_bitwise(core::QrSession& session, const Workload& w, int check_count) {
  std::vector<TileMatrix<double>> copies(w.tiles.begin(), w.tiles.end());
  auto qrs = session.factorize_batch(std::move(copies), w.opt);
  const int limit = std::min<int>(check_count, int(qrs.size()));
  for (int i = 0; i < limit; ++i) {
    TileMatrix<double> a = w.tiles[size_t(i)];
    auto plan = core::make_plan(a.mt(), a.nt(), *w.opt.tree);
    core::TStore<double> ts(a.mt(), a.nt(), w.opt.ib, a.nb());
    core::TStore<double> t2s(a.mt(), a.nt(), w.opt.ib, a.nb());
    runtime::execute_spawn(
        plan.graph,
        [&](std::int32_t idx) {
          core::run_task_kernels(plan.graph.tasks[size_t(idx)], a, ts, t2s, w.opt.ib);
        },
        1);
    auto want = a.to_dense();
    auto got = qrs[size_t(i)].factors().to_dense();
    for (std::int64_t j = 0; j < want.cols(); ++j)
      for (std::int64_t r = 0; r < want.rows(); ++r)
        if (got(r, j) != want(r, j)) return false;
  }
  return true;
}

void add_mode_row(TextTable& t, const char* mode, const ModeResult& r, const ModeResult& base) {
  t.add_row({mode, stringf("%.4f", r.seconds), stringf("%.2f", r.per_sec),
             stringf("%.2fx", base.seconds / r.seconds)});
}

/// Pure scheduling overhead (paper fig. 2-3 style): drive the small-QR DAG
/// with empty task bodies, so the only cost is planning + dispatch. This is
/// the quantity the persistent pool + plan cache exist to shrink, and it is
/// hardware-independent enough to compare across hosts.
struct OverheadResult {
  double spawn_us_per_graph = 0.0;
  double pool_us_per_graph = 0.0;
};

OverheadResult run_overhead(int p, int q, int threads, int calls) {
  OverheadResult out;
  auto noop = [](std::int32_t) {};
  const trees::TreeConfig tree{};
  {
    WallTimer timer;
    for (int c = 0; c < calls; ++c) {
      auto plan = core::make_plan(p, q, tree);  // seed: re-plan every call
      runtime::execute_spawn(plan.graph, noop, threads);
    }
    out.spawn_us_per_graph = timer.seconds() * 1e6 / calls;
  }
  {
    core::PlanCache cache;
    runtime::ThreadPool pool(threads);
    WallTimer timer;
    for (int c = 0; c < calls; ++c) {
      auto plan = cache.get(p, q, tree);
      pool.run(plan->graph, noop);
    }
    out.pool_us_per_graph = timer.seconds() * 1e6 / calls;
  }
  return out;
}

/// Per-submission scheduling overhead of a fused batch vs per-matrix DAGs:
/// the same K empty-body graphs dispatched as K submissions (cached plan +
/// cached ranks each) or as one cached fused submission. Both numbers are
/// us per graph, so fused < per-matrix means fusion saves real scheduler
/// work at that batch size.
struct FusedOverheadResult {
  int batch = 0;
  double per_matrix_us_per_graph = 0.0;
  double fused_us_per_graph = 0.0;
};

FusedOverheadResult run_fused_overhead(int p, int q, int threads, int batch, int calls) {
  FusedOverheadResult out;
  out.batch = batch;
  auto noop = [](std::int32_t) {};
  const trees::TreeConfig tree{};
  core::PlanCache cache;
  runtime::ThreadPool pool(threads);
  auto plan = cache.get(p, q, tree);
  auto fused = cache.get_fused(p, q, tree, batch);  // both warmed outside the timers
  {
    WallTimer timer;
    std::vector<std::future<void>> futures;
    futures.reserve(size_t(batch));
    for (int c = 0; c < calls; ++c) {
      futures.clear();
      for (int b = 0; b < batch; ++b)
        futures.push_back(pool.submit(plan->graph, noop, runtime::SchedulePriority::CriticalPath,
                                      0, nullptr, &plan->ranks));
      for (auto& f : futures) f.get();
    }
    out.per_matrix_us_per_graph = timer.seconds() * 1e6 / double(calls) / double(batch);
  }
  {
    WallTimer timer;
    for (int c = 0; c < calls; ++c) {
      auto f = pool.submit(fused->component_graph(), noop,
                           runtime::SchedulePriority::CriticalPath, 0, nullptr,
                           &fused->component_ranks(), fused->copies());
      f.get();
    }
    out.fused_us_per_graph = timer.seconds() * 1e6 / double(calls) / double(batch);
  }
  return out;
}

// ------------------------------------------------------ multicore scaling --

/// One point of the multicore scaling sweep: the pool-batch workload on
/// `threads` workers with pinning on/off, plus the scheduler's contention
/// and locality counters for that run. TILEDQR_PIN is read at pool
/// construction, so each point builds a fresh session.
struct ScalingRow {
  int threads = 0;
  bool pinned = false;
  double per_sec = 0.0;
  double speedup_vs_1t = 0.0;
  long tasks_stolen = 0;
  long steal_cas_retries = 0;
  long empty_steal_probes = 0;
  long tasks_home = 0;
  long tasks_foreign = 0;
  std::int64_t steal_lat_p50_ns = 0;  ///< successful-steal scan latency, bucket upper bound
  std::int64_t steal_lat_p95_ns = 0;
};

ScalingRow run_scaling_point(const Workload& w, int threads, bool pinned, int reps) {
  setenv("TILEDQR_PIN", pinned ? "1" : "0", 1);
  core::QrSession session(core::QrSession::Config{threads});
  ScalingRow row;
  row.threads = threads;
  row.pinned = pinned;
  row.per_sec = run_pool_batch(session, w, reps).per_sec;
  const auto stats = session.pool_stats();
  row.tasks_stolen = stats.tasks_stolen;
  row.steal_cas_retries = stats.steal_cas_retries;
  row.empty_steal_probes = stats.empty_steal_probes;
  row.tasks_home = stats.tasks_home;
  row.tasks_foreign = stats.tasks_foreign;
  row.steal_lat_p50_ns = stats.steal_latency_quantile_ns(0.50);
  row.steal_lat_p95_ns = stats.steal_latency_quantile_ns(0.95);
  return row;
}

}  // namespace

int main() {
  bench::Knobs knobs;
  const int threads = knobs.threads > 0 ? knobs.threads : default_thread_count();
  const int count = int(env_long("TILEDQR_SERVE_COUNT", knobs.quick ? 16 : 64));
  const std::int64_t small_n = env_long("TILEDQR_SERVE_N", knobs.quick ? 256 : 512);
  const int small_nb = int(env_long("TILEDQR_SERVE_NB", 128));
  const std::int64_t large_n = env_long("TILEDQR_LARGE_N", knobs.quick ? 1024 : 2048);

  std::printf("=== Serving throughput: spawn-per-call vs persistent pool ===\n");
  std::printf("threads=%d small=%dx %lldx%lld (nb=%d) large=%lldx%lld (nb=%d) reps=%d\n\n",
              threads, count, (long long)small_n, (long long)small_n, small_nb,
              (long long)large_n, (long long)large_n, small_nb, knobs.reps);

  // ---- batch of small QRs --------------------------------------------- --
  auto small = make_workload(count, small_n, small_nb, knobs.ib);
  auto spawn_small = run_spawn_per_call(small, threads, knobs.reps);
  core::QrSession session(core::QrSession::Config{threads});
  auto seq_small = run_pool_sequential(session, small, knobs.reps);
  auto batch_small = run_pool_batch(session, small, knobs.reps);
  auto fused_small = run_pool_fused(session, small, knobs.reps);
  // Snapshot stats before the correctness pass so they reflect only the
  // benchmarked modes.
  auto cache_stats = session.plan_cache_stats();
  auto pool_stats = session.pool_stats();
  const bool fused_bitwise = verify_fused_bitwise(session, small, knobs.quick ? 2 : 4);

  TextTable ts(stringf("%d x %lldx%lld QRs (nb=%d, %d threads)", count, (long long)small_n,
                       (long long)small_n, small_nb, threads));
  ts.set_header({"mode", "seconds", "fact/s", "speedup"});
  add_mode_row(ts, "spawn-per-call", spawn_small, spawn_small);
  add_mode_row(ts, "pool-sequential", seq_small, spawn_small);
  add_mode_row(ts, "pool-batch", batch_small, spawn_small);
  add_mode_row(ts, "pool-fused", fused_small, spawn_small);
  bench::emit(ts, "serving_small", knobs);
  std::printf("fused batch bitwise identical to sequential replay: %s\n",
              fused_bitwise ? "yes" : "NO (BUG)");
  std::printf("plan cache: %ld hits / %ld misses (hit rate %.3f), %zu entries; "
              "fused: %ld hits / %ld misses, %zu entries\n",
              cache_stats.hits, cache_stats.misses, cache_stats.hit_rate(), cache_stats.entries,
              cache_stats.fused_hits, cache_stats.fused_misses, cache_stats.fused_entries);
  std::printf("pool: %ld graphs, %ld tasks executed, %ld stolen (%ld lost CAS, %ld empty "
              "probes), locality %ld home / %ld foreign\n\n",
              pool_stats.graphs_completed, pool_stats.tasks_executed, pool_stats.tasks_stolen,
              pool_stats.steal_cas_retries, pool_stats.empty_steal_probes,
              pool_stats.tasks_home, pool_stats.tasks_foreign);

  // ---- pure scheduling overhead ----------------------------------------- --
  const int tile_p = int((small_n + small_nb - 1) / small_nb);
  const int overhead_calls = knobs.quick ? 100 : 400;
  auto overhead = run_overhead(tile_p, tile_p, threads, overhead_calls);
  std::printf("scheduling overhead on the %dx%d-tile DAG (empty bodies, %d calls):\n", tile_p,
              tile_p, overhead_calls);
  std::printf("  spawn-per-call + re-plan : %9.1f us/graph\n", overhead.spawn_us_per_graph);
  std::printf("  persistent pool + cache  : %9.1f us/graph  (%.1fx less overhead)\n\n",
              overhead.pool_us_per_graph,
              overhead.spawn_us_per_graph / overhead.pool_us_per_graph);

  // ---- fused vs per-matrix submission overhead -------------------------- --
  std::vector<FusedOverheadResult> fused_overheads;
  std::printf("fused vs per-matrix submission overhead (same %dx%d-tile DAG, empty bodies):\n",
              tile_p, tile_p);
  for (int batch : {4, 16, 64}) {
    auto fo = run_fused_overhead(tile_p, tile_p, threads, batch,
                                 std::max(8, overhead_calls / batch));
    fused_overheads.push_back(fo);
    std::printf("  batch %2d: per-matrix %8.1f us/graph, fused %8.1f us/graph  (%.2fx)\n",
                fo.batch, fo.per_matrix_us_per_graph, fo.fused_us_per_graph,
                fo.per_matrix_us_per_graph / fo.fused_us_per_graph);
  }
  std::printf("\n");

  // ---- multicore scaling ------------------------------------------------ --
  // The same small-QR batch swept across worker counts, pinned and unpinned
  // (TILEDQR_PIN), in pool-batch mode — per-matrix submissions in flight at
  // once, the shape that exercises dealing and stealing hardest. Steal
  // contention (lost top-CAS races, empty sweep probes) and the
  // home-vs-foreign locality split land next to each throughput point so
  // scaling claims carry their scheduler evidence. Results above
  // hardware_threads worker counts are oversubscribed — recorded anyway so
  // the curve is honest about the host.
  const char* saved_pin = std::getenv("TILEDQR_PIN");
  std::vector<ScalingRow> scaling;
  const int scaling_reps = std::max(2, knobs.reps);
  std::printf("multicore scaling (pool-batch, %d x %lldx%lld nb=%d, best of %d):\n", count,
              (long long)small_n, (long long)small_n, small_nb, scaling_reps);
  std::printf("  %7s %6s %10s %9s %8s %8s %8s %9s %9s %9s %9s\n", "threads", "pinned", "fact/s",
              "speedup", "stolen", "cas_ret", "empty", "home", "foreign", "st_p50us", "st_p95us");
  for (int t : {1, 2, 4, 8}) {
    for (bool pinned : {false, true}) {
      auto row = run_scaling_point(small, t, pinned, scaling_reps);
      const double base =
          scaling.empty() ? row.per_sec : scaling.front().per_sec;  // 1t unpinned
      row.speedup_vs_1t = row.per_sec / base;
      std::printf("  %7d %6s %10.1f %8.2fx %8ld %8ld %8ld %9ld %9ld %9.1f %9.1f\n", row.threads,
                  row.pinned ? "yes" : "no", row.per_sec, row.speedup_vs_1t, row.tasks_stolen,
                  row.steal_cas_retries, row.empty_steal_probes, row.tasks_home,
                  row.tasks_foreign, double(row.steal_lat_p50_ns) / 1e3,
                  double(row.steal_lat_p95_ns) / 1e3);
      scaling.push_back(row);
    }
  }
  saved_pin ? setenv("TILEDQR_PIN", saved_pin, 1) : unsetenv("TILEDQR_PIN");
  std::printf("\n");

  // ---- observability overhead ------------------------------------------- --
  // The same real-kernel pool-sequential pass, untraced then traced (best of
  // >= 3 reps each). The disabled path is one relaxed atomic load per task,
  // so tracing must be free when off and cheap when on; the smoke assert
  // (TILEDQR_OBS_ASSERT, on by default) enforces a < 5% ratio.
  auto& tracer = obs::Tracer::instance();
  const bool was_tracing = tracer.enabled();
  const int obs_reps = std::max(3, knobs.reps);
  tracer.disable();
  auto untraced = run_pool_sequential(session, small, obs_reps);
  tracer.enable();
  tracer.mark();  // scope the report + critical-path forensics to this pass
  auto traced = run_pool_sequential(session, small, obs_reps);
  if (!was_tracing) tracer.disable();
  const double obs_ratio = traced.seconds / untraced.seconds;
  std::printf("observability overhead (pool-sequential, best of %d):\n", obs_reps);
  std::printf("  untraced %.4f s, traced %.4f s -> ratio %.4f (%+.2f%%)\n", untraced.seconds,
              traced.seconds, obs_ratio, (obs_ratio - 1.0) * 100.0);

  // Critical-path forensics: join the traced pass against the cached plan's
  // DAG and decompose the dominant factorization's realized chain into work
  // vs scheduler gap. Reconstruction must itself be cheap — asserted < 1% of
  // the traced pass it explains (enforced with the overhead budget below).
  auto small_plan = session.plan_cache().get(tile_p, tile_p, *small.opt.tree);
  WallTimer analysis_timer;
  const auto sched = obs::build_schedule_report(tracer, small_plan->graph, threads);
  const double analysis_seconds = analysis_timer.seconds();
  const obs::CriticalPathBreakdown& bd = sched.breakdown;
  std::string sched_report = obs::format_schedule_report(sched);
  if (!sched_report.empty()) std::printf("%s", sched_report.c_str());
  std::printf("  (report + breakdown built in %.3f ms, %.3f%% of the traced pass)\n\n",
              analysis_seconds * 1e3, 100.0 * analysis_seconds / traced.seconds);

  // ---- one large QR ---------------------------------------------------- --
  auto large = make_workload(1, large_n, small_nb, knobs.ib);
  auto spawn_large = run_spawn_per_call(large, threads, knobs.reps);
  core::QrSession large_session(core::QrSession::Config{threads});
  auto pool_large = run_pool_sequential(large_session, large, knobs.reps);

  TextTable tl(stringf("one %lldx%lld QR (nb=%d, %d threads)", (long long)large_n,
                       (long long)large_n, small_nb, threads));
  tl.set_header({"mode", "seconds", "fact/s", "speedup"});
  add_mode_row(tl, "spawn-per-call", spawn_large, spawn_large);
  add_mode_row(tl, "pool", pool_large, spawn_large);
  bench::emit(tl, "serving_large", knobs);

  // ---- JSON record ----------------------------------------------------- --
  auto json_path = env_string("TILEDQR_BENCH_JSON").value_or("BENCH_serving.json");
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    json << "{\n"
         << "  \"bench\": \"serving_throughput\",\n"
         << stringf("  \"host\": {\"hardware_threads\": %u, \"bench_threads\": %d},\n",
                    std::thread::hardware_concurrency(), threads)
         << stringf("  \"small\": {\"count\": %d, \"n\": %lld, \"nb\": %d,\n", count,
                    (long long)small_n, small_nb)
         << stringf("    \"spawn_per_call\": {\"seconds\": %.6f, \"per_sec\": %.3f},\n",
                    spawn_small.seconds, spawn_small.per_sec)
         << stringf("    \"pool_sequential\": {\"seconds\": %.6f, \"per_sec\": %.3f},\n",
                    seq_small.seconds, seq_small.per_sec)
         << stringf("    \"pool_batch\": {\"seconds\": %.6f, \"per_sec\": %.3f},\n",
                    batch_small.seconds, batch_small.per_sec)
         << stringf("    \"pool_fused\": {\"seconds\": %.6f, \"per_sec\": %.3f},\n",
                    fused_small.seconds, fused_small.per_sec)
         << stringf("    \"speedup_pool_batch_vs_spawn\": %.3f,\n",
                    spawn_small.seconds / batch_small.seconds)
         << stringf("    \"speedup_pool_fused_vs_spawn\": %.3f,\n",
                    spawn_small.seconds / fused_small.seconds)
         << stringf("    \"fused_bitwise_identical\": %s,\n", fused_bitwise ? "true" : "false")
         << stringf("    \"plan_cache\": {\"hits\": %ld, \"misses\": %ld, \"hit_rate\": %.4f, "
                    "\"fused_hits\": %ld, \"fused_misses\": %ld}},\n",
                    cache_stats.hits, cache_stats.misses, cache_stats.hit_rate(),
                    cache_stats.fused_hits, cache_stats.fused_misses)
         << stringf("  \"scheduling_overhead_us_per_graph\": {\"spawn_per_call\": %.1f, "
                    "\"persistent_pool\": %.1f, \"ratio\": %.2f},\n",
                    overhead.spawn_us_per_graph, overhead.pool_us_per_graph,
                    overhead.spawn_us_per_graph / overhead.pool_us_per_graph);
    json << "  \"fused_overhead_us_per_graph\": [";
    for (size_t i = 0; i < fused_overheads.size(); ++i) {
      const auto& fo = fused_overheads[i];
      json << stringf("%s{\"batch\": %d, \"per_matrix\": %.1f, \"fused\": %.1f, "
                      "\"ratio\": %.2f}",
                      i ? ", " : "", fo.batch, fo.per_matrix_us_per_graph,
                      fo.fused_us_per_graph,
                      fo.per_matrix_us_per_graph / fo.fused_us_per_graph);
    }
    json << "],\n";
    json << "  \"multicore_scaling\": [";
    for (size_t i = 0; i < scaling.size(); ++i) {
      const auto& r = scaling[i];
      json << stringf("%s\n    {\"threads\": %d, \"pinned\": %s, \"per_sec\": %.3f, "
                      "\"speedup_vs_1t\": %.3f, \"tasks_stolen\": %ld, "
                      "\"steal_cas_retries\": %ld, \"empty_steal_probes\": %ld, "
                      "\"tasks_home\": %ld, \"tasks_foreign\": %ld, "
                      "\"steal_latency_p50_ns\": %lld, \"steal_latency_p95_ns\": %lld}",
                      i ? "," : "", r.threads, r.pinned ? "true" : "false", r.per_sec,
                      r.speedup_vs_1t, r.tasks_stolen, r.steal_cas_retries,
                      r.empty_steal_probes, r.tasks_home, r.tasks_foreign,
                      (long long)r.steal_lat_p50_ns, (long long)r.steal_lat_p95_ns);
    }
    json << "],\n";
    json << stringf("  \"observability\": {\"untraced_seconds\": %.6f, "
                    "\"traced_seconds\": %.6f, \"overhead_ratio\": %.4f,\n",
                    untraced.seconds, traced.seconds, obs_ratio)
         << stringf("    \"analysis_seconds\": %.6f,\n", analysis_seconds)
         << stringf("    \"critical_path\": {\"valid\": %s, \"tasks\": %ld, "
                    "\"realized_ms\": %.4f, \"work_ms\": %.4f, \"gap_ms\": %.4f, "
                    "\"dispatch_gap_ms\": %.4f, \"cross_gap_ms\": %.4f, "
                    "\"stolen_edges\": %ld, \"model_cp_ms\": %.4f, "
                    "\"realized_over_model\": %.3f}},\n",
                    bd.valid ? "true" : "false", bd.path_tasks, double(bd.realized_ns) / 1e6,
                    double(bd.work_ns) / 1e6, double(bd.gap_ns) / 1e6,
                    double(bd.dispatch_gap_ns) / 1e6, double(bd.cross_gap_ns) / 1e6,
                    bd.stolen_edges, bd.model_cp_seconds * 1e3, bd.realized_over_model);
    json
         << stringf("  \"large\": {\"n\": %lld, \"nb\": %d,\n", (long long)large_n, small_nb)
         << stringf("    \"spawn_per_call\": {\"seconds\": %.6f},\n", spawn_large.seconds)
         << stringf("    \"pool\": {\"seconds\": %.6f},\n", pool_large.seconds)
         << stringf("    \"speedup_pool_vs_spawn\": %.3f}\n", spawn_large.seconds / pool_large.seconds)
         << "}\n";
    std::printf("(json written to %s)\n", json_path.c_str());
  }

  // Enforced last so the table and JSON record land even on failure.
  if (env_flag("TILEDQR_OBS_ASSERT", true) && obs_ratio > 1.05) {
    std::fprintf(stderr,
                 "FAIL: traced run is %.2f%% slower than untraced (budget 5%%); set "
                 "TILEDQR_OBS_ASSERT=0 to report without enforcing\n",
                 (obs_ratio - 1.0) * 100.0);
    return 1;
  }
  if (env_flag("TILEDQR_OBS_ASSERT", true) && analysis_seconds > 0.01 * traced.seconds) {
    std::fprintf(stderr,
                 "FAIL: critical-path analysis took %.3f ms, over 1%% of the traced pass "
                 "(%.3f s); set TILEDQR_OBS_ASSERT=0 to report without enforcing\n",
                 analysis_seconds * 1e3, traced.seconds);
    return 1;
  }
  return 0;
}
