// Autotuner benchmark: the tuner's auto-selected tree vs every fixed tree
// across a (p, q) tile-grid sweep, measured on the real pool.
//
// For each shape the tuner makes its stage-1 (model) decision for the
// session's worker count, then every fixed candidate — FlatTree TT/TS,
// BinaryTree, Fibonacci, Greedy, PlasmaTree TS/TT (paper BS sweep) — is
// factorized best-of-reps on a persistent ThreadPool. The auto row reuses
// the measurement of whichever candidate the tuner chose, so the comparison
// is apples-to-apples.
//
// Invariants checked in-process (exit code 1 on violation):
//   * floor — the auto choice is never slower than the *worst* fixed tree
//     (5% slack). Vacuous when auto is one of the measured candidates, but
//     it is the check that bites in TILEDQR_TREE-forced mode, where the
//     "auto" row can be any tree.
//   * median — the auto choice beats the *median* fixed tree (10% slack).
//     This one can genuinely fail: a tuner that picks bad trees loses to
//     the middle of its own candidate field.
// Whether auto also matches the measured *best* per shape is recorded in
// the JSON (it should on the paper's headline shapes; on a noisy box
// near-ties can swap).
//
// Emits a table plus a JSON blob (TILEDQR_BENCH_JSON, default
// BENCH_autotune.json; set it to the empty string to disable) and, when
// TILEDQR_TUNER_TABLE is set, saves the tuning table produced by the run —
// CI uploads it as an artifact.
//
// Env knobs: TILEDQR_TUNE_NB (tile size, default 48), TILEDQR_TUNE_IB,
// TILEDQR_THREADS, TILEDQR_REPS, TILEDQR_QUICK (smaller grid),
// TILEDQR_TREE (forces the "auto" row — A/B escape hatch; the median check
// is skipped, a forced tree is allowed to be slow),
// TILEDQR_TUNE_ASSERT=0 (report violations but exit 0 — for smoke runs on
// noisy/instrumented hosts, e.g. the TSan CI job),
// TILEDQR_TUNER_TABLE (tuning-table JSON output path).
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "core/plan.hpp"
#include "runtime/thread_pool.hpp"
#include "tuner/tuner.hpp"

using namespace tiledqr;
using trees::KernelFamily;
using trees::TreeConfig;
using trees::TreeKind;

namespace {

struct ShapeResult {
  int p, q;
  TreeConfig auto_config;
  double auto_sec = 0.0;
  double best_sec = 0.0;
  double median_sec = 0.0;
  double worst_sec = 0.0;
  std::string best_name;
  bool auto_is_best = false;
};

}  // namespace

int main() {
  bench::Knobs knobs;
  bench::banner("Autotune: model-selected tree vs fixed trees, measured", knobs);
  const int nb = int(env_long("TILEDQR_TUNE_NB", 48));
  const int ib = std::min(int(env_long("TILEDQR_TUNE_IB", 16)), nb);
  const int reps = std::max(1, knobs.reps);

  std::vector<std::pair<int, int>> shapes{{4, 4}, {8, 8}, {16, 4}, {32, 4}, {8, 2}, {12, 12}};
  if (knobs.quick) shapes = {{4, 4}, {8, 8}, {16, 4}};

  runtime::ThreadPool pool(knobs.threads);
  core::PlanCache cache;
  tuner::TunerConfig tuner_config;  // sc11 profile, model-only stage
  tuner::Tuner tuner(tuner_config);

  std::printf("nb = %d, ib = %d, pool = %d workers, reps = %d, profile = %s\n\n", nb, ib,
              pool.size(), reps, tuner.config().profile.id.c_str());
  const bool forced_mode = tuner::forced_tree_from_env(4, 4).has_value();
  const bool assert_checks = env_flag("TILEDQR_TUNE_ASSERT", true);
  if (forced_mode)
    std::printf("NOTE: TILEDQR_TREE forces the auto row — median check skipped\n\n");

  TextTable t("auto-selected tree vs fixed trees (wall seconds, best of reps)");
  t.set_header({"p x q", "auto (tree)", "auto s", "best fixed (tree)", "best s", "median s",
                "worst s", "auto/best"});

  std::vector<ShapeResult> results;
  bool floor_ok = true;
  for (auto [p, q] : shapes) {
    // The same enumeration the tuner ranks — shared so the bench's fixed
    // field cannot drift from what the tuner actually considers.
    std::vector<TreeConfig> fixed = tuner::candidate_configs(p, q);
    TreeConfig auto_config = tuner.choose(p, q, pool.size(), cache);

    // tuner::measure_tree_seconds is the tuner's own stage-2 protocol, so
    // the bench's numbers and the tuner's refinement numbers cannot drift
    // apart; one stage2_matrix per shape, every config times the same data.
    const TileMatrix<double> base = tuner::stage2_matrix(p, q, nb);
    ShapeResult r{p, q, auto_config};
    r.best_sec = -1.0;
    double auto_sec = -1.0;
    std::vector<double> seconds;
    for (const TreeConfig& c : fixed) {
      double sec = tuner::measure_tree_seconds(c, base, ib, cache, pool, 0, reps);
      seconds.push_back(sec);
      if (c == auto_config) auto_sec = sec;
      if (r.best_sec < 0.0 || sec < r.best_sec) {
        r.best_sec = sec;
        r.best_name = c.name();
      }
      r.worst_sec = std::max(r.worst_sec, sec);
    }
    std::nth_element(seconds.begin(), seconds.begin() + long(seconds.size()) / 2,
                     seconds.end());
    r.median_sec = seconds[seconds.size() / 2];
    // A forced (TILEDQR_TREE) config can fall outside the fixed set.
    if (auto_sec < 0.0)
      auto_sec = tuner::measure_tree_seconds(auto_config, base, ib, cache, pool, 0, reps);
    r.auto_sec = auto_sec;
    r.auto_is_best = auto_config.name() == r.best_name;

    // Floor: auto must never lose to the worst fixed tree (bites in forced
    // mode). Median: auto must beat the middle of its own candidate field —
    // the check a broken tuner actually fails.
    if (r.auto_sec > r.worst_sec * 1.05) {
      std::printf("FLOOR VIOLATION: %dx%d auto %s %.6fs > worst fixed %.6fs\n", p, q,
                  auto_config.name().c_str(), r.auto_sec, r.worst_sec);
      floor_ok = false;
    }
    if (!forced_mode && r.auto_sec > r.median_sec * 1.10) {
      std::printf("MEDIAN VIOLATION: %dx%d auto %s %.6fs > median fixed %.6fs\n", p, q,
                  auto_config.name().c_str(), r.auto_sec, r.median_sec);
      floor_ok = false;
    }

    t.add_row({stringf("%d x %d", p, q), auto_config.name(), stringf("%.5f", r.auto_sec),
               r.best_name, stringf("%.5f", r.best_sec), stringf("%.5f", r.median_sec),
               stringf("%.5f", r.worst_sec), stringf("%.2f", r.auto_sec / r.best_sec)});
    results.push_back(std::move(r));
  }
  bench::emit(t, "bench_autotune", knobs);

  auto tuning_stats = tuner.stats();
  std::printf("tuner: %ld model decisions, %ld table hits\n", tuning_stats.misses,
              tuning_stats.hits);

  if (auto table_path = env_string("TILEDQR_TUNER_TABLE")) {
    tuner.table().save(*table_path);
    std::printf("(tuning table written to %s)\n", table_path->c_str());
  }

  // Raw getenv, not env_string: an explicitly empty TILEDQR_BENCH_JSON
  // means "no JSON output" (env_string would treat it as unset and fall
  // back to the default path — clobbering the checked-in baseline).
  const char* json_env = std::getenv("TILEDQR_BENCH_JSON");
  const std::string json_path = json_env ? std::string(json_env) : "BENCH_autotune.json";
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    json << "{\n";
    json << stringf("  \"bench\": \"autotune\",\n  \"nb\": %d,\n  \"ib\": %d,\n"
                    "  \"threads\": %d,\n  \"reps\": %d,\n  \"profile\": \"%s\",\n",
                    nb, ib, pool.size(), reps, tuner.config().profile.id.c_str());
    json << "  \"shapes\": [";
    for (size_t i = 0; i < results.size(); ++i) {
      const ShapeResult& r = results[i];
      json << (i == 0 ? "\n" : ",\n");
      json << stringf(
          "    {\"p\": %d, \"q\": %d, \"auto\": \"%s\", \"auto_sec\": %.6f, "
          "\"best\": \"%s\", \"best_sec\": %.6f, \"median_sec\": %.6f, \"worst_sec\": %.6f, "
          "\"auto_matches_best\": %s}",
          r.p, r.q, r.auto_config.name().c_str(), r.auto_sec, r.best_name.c_str(), r.best_sec,
          r.median_sec, r.worst_sec, r.auto_is_best ? "true" : "false");
    }
    json << stringf("\n  ],\n  \"checks_ok\": %s\n}\n", floor_ok ? "true" : "false");
    json.flush();
    if (!json.good()) {
      // An unwritable baseline path must fail loudly — a silent no-op here
      // leaves the operator believing a baseline was recorded.
      std::printf("ERROR: failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("(json written to %s)\n", json_path.c_str());
  }
  if (!floor_ok && !assert_checks)
    std::printf("violations reported but not enforced (TILEDQR_TUNE_ASSERT=0)\n");
  return floor_ok || !assert_checks ? 0 : 1;
}
