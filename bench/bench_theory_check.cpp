// Theorem 1, Propositions 1 and 2: measured critical paths against the
// paper's closed forms and bounds (the test suite asserts these; this bench
// prints them for the record).
#include <cmath>

#include "bench_common.hpp"
#include "core/plan.hpp"
#include "sim/critical_path.hpp"
#include "sim/dynamic.hpp"
#include "trees/generators.hpp"

using namespace tiledqr;

int main() {
  bench::Knobs knobs;
  bench::banner("Theorem 1 / Propositions 1-2: closed forms vs simulator", knobs);
  using trees::KernelFamily;
  using trees::TreeKind;

  auto cp_of = [&](int p, int q, TreeKind kind, KernelFamily fam) {
    return sim::critical_path_units(p, q, trees::TreeConfig{kind, fam, 1, 0});
  };
  bool all_ok = true;
  auto row = [&](TextTable& t, int p, int q, long got, long want) {
    bool ok = got == want;
    all_ok = all_ok && ok;
    t.add_row({std::to_string(p), std::to_string(q), std::to_string(got),
               std::to_string(want), ok ? "ok" : "MISMATCH"});
  };

  TextTable t1("Theorem 1(1): FlatTree(TT) closed forms");
  t1.set_header({"p", "q", "measured", "formula", "status"});
  for (int p : {2, 5, 15, 40}) row(t1, p, 1, cp_of(p, 1, TreeKind::FlatTree, KernelFamily::TT), 2 * p + 2);
  for (auto [p, q] : std::vector<std::pair<int, int>>{{5, 3}, {15, 6}, {40, 10}})
    row(t1, p, q, cp_of(p, q, TreeKind::FlatTree, KernelFamily::TT), 6 * p + 16 * q - 22);
  for (int n : {2, 5, 12})
    row(t1, n, n, cp_of(n, n, TreeKind::FlatTree, KernelFamily::TT), 22 * n - 24);
  bench::emit(t1, "theory_flat_tree", knobs);

  TextTable t2("Proposition 2: FlatTree(TS) closed forms");
  t2.set_header({"p", "q", "measured", "formula", "status"});
  for (int p : {2, 5, 15}) row(t2, p, 1, cp_of(p, 1, TreeKind::FlatTree, KernelFamily::TS), 6 * p - 2);
  for (auto [p, q] : std::vector<std::pair<int, int>>{{5, 3}, {15, 6}, {40, 10}})
    row(t2, p, q, cp_of(p, q, TreeKind::FlatTree, KernelFamily::TS), 12 * p + 18 * q - 32);
  for (int n : {2, 5, 8})
    row(t2, n, n, cp_of(n, n, TreeKind::FlatTree, KernelFamily::TS), 30 * n - 34);
  bench::emit(t2, "theory_ts_flat_tree", knobs);

  TextTable t3("Proposition 1: BinaryTree, powers of two (q < p)");
  t3.set_header({"p", "q", "measured", "formula", "status"});
  for (auto [p, q] : std::vector<std::pair<int, int>>{{4, 2}, {8, 4}, {16, 8}, {32, 8}, {64, 16}}) {
    long lg = std::lround(std::log2(double(p)));
    row(t3, p, q, cp_of(p, q, TreeKind::BinaryTree, KernelFamily::TT),
        (10 + 6 * lg) * q - 4 * lg - 6);
  }
  bench::emit(t3, "theory_binary_tree", knobs);

  // Reproduction notes (see EXPERIMENTS.md): the Greedy bound is loose by
  // one coarse step at large p/q — the paper's own Table 4b has
  // Greedy(128,32) = 748 > 746 — so it is checked with 6 units of slack;
  // the 22q-30 lower bound only applies away from the square boundary
  // (Table 5's Greedy = 826 < 850 at p = q = 40), so it is checked for
  // p >= 2q.
  TextTable t4("Theorem 1(2,3): bounds for Fibonacci / Greedy, lower bound 22q-30");
  t4.set_header({"p", "q", "Fib cp", "Fib bound", "Greedy cp", "Greedy bound", "22q-30"});
  for (auto [p, q] : std::vector<std::pair<int, int>>{{15, 6}, {40, 10}, {64, 16}, {128, 32},
                                                       {40, 40}}) {
    long fib = sim::critical_path_units(p, q, trees::fibonacci_tree(p, q));
    long fib_bound = 22L * q + 6L * long(std::ceil(std::sqrt(2.0 * p)));
    long gre = sim::critical_path_units(p, q, trees::greedy_tree(p, q));
    long gre_bound = 22L * q + 6L * long(std::ceil(std::log2(double(p))));
    all_ok = all_ok && fib <= fib_bound && gre <= gre_bound + 6;
    if (p >= 2 * q) all_ok = all_ok && gre >= 22L * q - 30;
    t4.add_row({std::to_string(p), std::to_string(q), std::to_string(fib),
                std::to_string(fib_bound), std::to_string(gre), std::to_string(gre_bound),
                std::to_string(22L * q - 30)});
  }
  bench::emit(t4, "theory_bounds", knobs);

  std::printf("theory check: %s\n", all_ok ? "ALL OK" : "MISMATCHES FOUND");
  return all_ok ? 0 : 1;
}
