// Ablation: PlasmaTree's tuning-parameter sensitivity. The paper's central
// practical argument for Greedy is that PlasmaTree needs a well-chosen
// domain size BS; this sweep shows how much a wrong BS costs.
#include "bench_common.hpp"
#include "core/plan.hpp"
#include "sim/critical_path.hpp"
#include "trees/generators.hpp"

using namespace tiledqr;

int main() {
  bench::Knobs knobs;
  bench::banner("Ablation: PlasmaTree(TT) domain-size sensitivity", knobs);
  const int p = knobs.p;

  TextTable t(stringf("critical path vs BS, p = %d (Greedy shown for reference)", p));
  std::vector<int> bss{1, 2, 3, 5, 8, 10, 13, 20, 27, 32, p};
  std::vector<std::string> header{"q", "Greedy", "best", "worst/best"};
  for (int bs : bss) header.push_back("BS=" + std::to_string(bs));
  t.set_header(header);
  for (int q : {1, 2, 4, 6, 8, 10, 16, 20, 32, 40}) {
    if (q > p) continue;
    if (knobs.quick && q > 10) continue;
    long greedy = sim::critical_path_units(p, q, trees::greedy_tree(p, q));
    long best = -1, worst = -1;
    std::vector<long> cps;
    for (int bs : bss) {
      long cp = sim::critical_path_units(
          p, q, trees::TreeConfig{trees::TreeKind::PlasmaTree, trees::KernelFamily::TT, bs, 0});
      cps.push_back(cp);
      if (best < 0 || cp < best) best = cp;
      if (cp > worst) worst = cp;
    }
    std::vector<std::string> row{std::to_string(q), std::to_string(greedy),
                                 std::to_string(best),
                                 stringf("%.2f", double(worst) / double(best))};
    for (long cp : cps) row.push_back(std::to_string(cp));
    t.add_row(row);
  }
  bench::emit(t, "ablation_bs_sweep", knobs);
  return 0;
}
