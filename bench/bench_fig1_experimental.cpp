// Figures 1b / 1d: experimental performance of the TT-kernel algorithms
// (FlatTree, PlasmaTree best-BS, Fibonacci, Greedy) on this machine, double
// complex and double precision.
#include <complex>

#include "bench_experimental.hpp"

using namespace tiledqr;

namespace {

template <typename T>
void experimental_table(const char* precision, bench::Knobs knobs) {
  TextTable t(stringf("Figure 1 experimental GFLOP/s (%s), p = %d, nb = %d", precision,
                      knobs.p, knobs.nb));
  t.set_header({"q", "FlatTree(TT)", "PlasmaTree(TT,best)", "BS", "Fibonacci", "Greedy"});
  for (int q : bench::experimental_q_values(knobs.p, knobs.quick)) {
    auto e = bench::run_sweep_point<T>(knobs, q, /*include_ts=*/false);
    t.add_row({std::to_string(q), stringf("%.3f", e.flat.gflops),
               stringf("%.3f", e.plasma.gflops), std::to_string(e.plasma_bs),
               stringf("%.3f", e.fibonacci.gflops), stringf("%.3f", e.greedy.gflops)});
  }
  bench::emit(t, std::string("fig1_experimental_") + precision, knobs);
}

}  // namespace

int main() {
  bench::Knobs knobs;
  bench::banner("Figures 1b/1d: experimental performance, TT kernels", knobs);
  // Complex arithmetic quadruples the flops per entry; halve the reps.
  bench::Knobs zknobs = knobs;
  zknobs.reps = std::max(1, knobs.reps / 2);
  experimental_table<std::complex<double>>("double_complex", zknobs);
  experimental_table<double>("double", knobs);
  return 0;
}
