// Figures 2 and 3: overhead of each TT-kernel algorithm with respect to
// Greedy (Greedy = 1), both in theoretical critical-path length (every q)
// and in measured wall time (the experimental q sweep).
#include <complex>

#include "bench_experimental.hpp"
#include "sim/critical_path.hpp"
#include "trees/generators.hpp"

using namespace tiledqr;

namespace {

void theoretical_overhead(const bench::Knobs& knobs) {
  const int p = knobs.p;
  TextTable t(stringf("Figure 2a/3a: critical-path overhead vs Greedy, p = %d", p));
  t.set_header({"q", "FlatTree(TT)", "PlasmaTree(TT,best)", "Fibonacci", "Greedy"});
  for (int q = 1; q <= p; ++q) {
    if (knobs.quick && q > 8 && q % 8 != 0) continue;
    long greedy = sim::critical_path_units(p, q, trees::greedy_tree(p, q));
    auto ratio = [&](long cp) { return stringf("%.4f", double(cp) / double(greedy)); };
    long flat =
        sim::critical_path_units(p, q, trees::flat_tree(p, q, trees::KernelFamily::TT));
    auto plasma = core::best_plasma_bs(p, q, trees::KernelFamily::TT);
    long fib = sim::critical_path_units(p, q, trees::fibonacci_tree(p, q));
    t.add_row({std::to_string(q), ratio(flat), ratio(plasma.critical_path), ratio(fib),
               "1.0000"});
  }
  bench::emit(t, "fig2_3_theoretical_overhead", knobs);
}

template <typename T>
void experimental_overhead(const char* precision, bench::Knobs knobs) {
  TextTable t(stringf("Figure 2b-c/3b-c: time overhead vs Greedy (%s)", precision));
  t.set_header({"q", "FlatTree(TT)", "PlasmaTree(TT,best)", "BS", "Fibonacci", "Greedy"});
  for (int q : bench::experimental_q_values(knobs.p, knobs.quick)) {
    auto e = bench::run_sweep_point<T>(knobs, q, /*include_ts=*/false);
    auto ratio = [&](const core::RunRecord& r) {
      return stringf("%.4f", r.seconds / e.greedy.seconds);
    };
    t.add_row({std::to_string(q), ratio(e.flat), ratio(e.plasma), std::to_string(e.plasma_bs),
               ratio(e.fibonacci), "1.0000"});
  }
  bench::emit(t, std::string("fig2_3_experimental_overhead_") + precision, knobs);
}

}  // namespace

int main() {
  bench::Knobs knobs;
  bench::banner("Figures 2/3: overhead with respect to Greedy (Greedy = 1)", knobs);
  theoretical_overhead(knobs);
  bench::Knobs fast = knobs;
  fast.reps = 1;
  experimental_overhead<std::complex<double>>("double_complex", fast);
  experimental_overhead<double>("double", fast);
  return 0;
}
