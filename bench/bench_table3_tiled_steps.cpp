// Table 3: tiled time-steps (TT kernels, Table 1 weights) for FlatTree,
// Fibonacci, Greedy, BinaryTree and PlasmaTree(BS=5) on a 15 x 6 grid.
#include "bench_common.hpp"
#include "sim/critical_path.hpp"
#include "trees/generators.hpp"

using namespace tiledqr;

namespace {

void print_zero_table(const std::string& name, int p, int q,
                      const trees::EliminationList& list, const bench::Knobs& knobs) {
  auto g = dag::build_task_graph(p, q, list);
  auto cp = sim::earliest_finish(g);
  auto z = sim::zero_time_table(g, cp);
  TextTable t(stringf("%s (critical path %ld)", name.c_str(), cp.critical_path));
  std::vector<std::string> header{"row"};
  for (int k = 1; k <= q; ++k) header.push_back("k=" + std::to_string(k));
  t.set_header(header);
  for (int i = 0; i < p; ++i) {
    std::vector<std::string> row{std::to_string(i + 1)};
    for (int k = 0; k < q; ++k)
      row.push_back(z[size_t(i)][size_t(k)] == 0 ? (i <= k ? "?" : ".")
                                                 : std::to_string(z[size_t(i)][size_t(k)]));
    t.add_row(row);
  }
  bench::emit(t, "table3_" + name, knobs);
}

}  // namespace

int main() {
  bench::Knobs knobs;
  bench::banner("Table 3: tiled time-steps (15 x 6, as published)", knobs);
  const int p = 15, q = 6;
  using trees::KernelFamily;
  print_zero_table("flat_tree", p, q, trees::flat_tree(p, q, KernelFamily::TT), knobs);
  print_zero_table("fibonacci", p, q, trees::fibonacci_tree(p, q), knobs);
  print_zero_table("greedy", p, q, trees::greedy_tree(p, q), knobs);
  print_zero_table("binary_tree", p, q, trees::binary_tree(p, q), knobs);
  print_zero_table("plasma_tree_bs5", p, q, trees::plasma_tree(p, q, 5, KernelFamily::TT),
                   knobs);
  return 0;
}
