// Table 2: coarse-grain time-steps for Sameh-Kuck, Fibonacci and Greedy on a
// 15 x 6 tile matrix (plus any TILEDQR_P-selected shape).
#include "bench_common.hpp"
#include "trees/coarse.hpp"

using namespace tiledqr;

namespace {

void print_schedule(const char* name, const trees::CoarseSchedule& s, const bench::Knobs& knobs) {
  TextTable t(stringf("%s (coarse model, makespan %d)", name, s.makespan));
  std::vector<std::string> header{"row"};
  for (int k = 1; k <= s.q; ++k) header.push_back("k=" + std::to_string(k));
  t.set_header(header);
  for (int i = 0; i < s.p; ++i) {
    std::vector<std::string> row{std::to_string(i + 1)};
    for (int k = 0; k < s.q; ++k) {
      int v = s.step[size_t(i)][size_t(k)];
      row.push_back(v == 0 ? (i <= k ? "?" : ".") : std::to_string(v));
    }
    t.add_row(row);
  }
  bench::emit(t, std::string("table2_") + name, knobs);
}

}  // namespace

int main() {
  bench::Knobs knobs;
  bench::banner("Table 2: coarse-grain time-steps (15 x 6, as published)", knobs);
  print_schedule("sameh_kuck", trees::coarse_sameh_kuck(15, 6), knobs);
  print_schedule("fibonacci", trees::coarse_fibonacci(15, 6), knobs);
  print_schedule("greedy", trees::coarse_greedy(15, 6), knobs);
  return 0;
}
