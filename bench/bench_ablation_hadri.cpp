// Ablation: PlasmaTree (bottom domain shrinks) vs Hadri et al.'s
// Semi/Fully-Parallel trees (top domain shrinks). The paper reports that
// "the PLASMA algorithms performed identically or better" and omits the
// comparison; this bench records it, in critical-path terms, at every q.
#include "bench_common.hpp"
#include "core/plan.hpp"
#include "sim/critical_path.hpp"
#include "trees/generators.hpp"

using namespace tiledqr;

int main() {
  bench::Knobs knobs;
  bench::banner("Ablation: PlasmaTree vs Hadri Semi/Fully-Parallel (critical paths)", knobs);
  const int p = knobs.p;

  TextTable t(stringf("best-BS critical paths, p = %d (TT = Fully-Parallel family)", p));
  t.set_header({"q", "Greedy", "Plasma(TT)", "BS", "Hadri-FP", "BS", "Plasma(TS)", "BS",
                "Hadri-SP", "BS"});
  auto best_hadri = [&](int q, trees::KernelFamily fam, int* bs_out) {
    long best = -1;
    for (int bs = 1; bs <= p; ++bs) {
      long cp = sim::critical_path_units(p, q, trees::hadri_tree(p, q, bs, fam));
      if (best < 0 || cp < best) {
        best = cp;
        *bs_out = bs;
      }
    }
    return best;
  };
  for (int q = 1; q <= p; ++q) {
    if (knobs.quick ? (q > 8 && q % 8 != 0) : (q > 10 && q % 5 != 0 && q != p)) continue;
    using trees::KernelFamily;
    long greedy = sim::critical_path_units(p, q, trees::greedy_tree(p, q));
    auto ptt = core::best_plasma_bs(p, q, KernelFamily::TT);
    auto pts = core::best_plasma_bs(p, q, KernelFamily::TS);
    int hfp_bs = 1, hsp_bs = 1;
    long hfp = best_hadri(q, KernelFamily::TT, &hfp_bs);
    long hsp = best_hadri(q, KernelFamily::TS, &hsp_bs);
    t.add_row({std::to_string(q), std::to_string(greedy), std::to_string(ptt.critical_path),
               std::to_string(ptt.bs), std::to_string(hfp), std::to_string(hfp_bs),
               std::to_string(pts.critical_path), std::to_string(pts.bs), std::to_string(hsp),
               std::to_string(hsp_bs)});
  }
  bench::emit(t, "ablation_hadri", knobs);
  return 0;
}
