// Tables 6-9: experimental Greedy vs PlasmaTree(TT) and Greedy vs Fibonacci,
// in double and double complex precision, with the paper's Overhead
// (rate ratio vs Greedy) and Gain columns.
#include <complex>

#include "bench_experimental.hpp"

using namespace tiledqr;

namespace {

template <typename T>
void tables(const char* precision, const bench::Knobs& knobs) {
  TextTable tp(stringf("Greedy vs PlasmaTree(TT), experimental %s (GFLOP/s)", precision));
  tp.set_header({"p", "q", "Greedy", "PlasmaTree(TT)", "BS", "Overhead", "Gain"});
  TextTable tf(stringf("Greedy vs Fibonacci, experimental %s (GFLOP/s)", precision));
  tf.set_header({"p", "q", "Greedy", "Fibonacci", "Overhead", "Gain"});

  for (int q : bench::experimental_q_values(knobs.p, knobs.quick)) {
    auto e = bench::run_sweep_point<T>(knobs, q, /*include_ts=*/false);
    double ov_p = e.plasma.gflops / e.greedy.gflops;
    double ov_f = e.fibonacci.gflops / e.greedy.gflops;
    tp.add_row({std::to_string(knobs.p), std::to_string(q), stringf("%.4f", e.greedy.gflops),
                stringf("%.4f", e.plasma.gflops), std::to_string(e.plasma_bs),
                stringf("%.4f", ov_p), stringf("%.4f", 1.0 - ov_p)});
    tf.add_row({std::to_string(knobs.p), std::to_string(q), stringf("%.4f", e.greedy.gflops),
                stringf("%.4f", e.fibonacci.gflops), stringf("%.4f", ov_f),
                stringf("%.4f", 1.0 - ov_f)});
  }
  bench::emit(tp, stringf("tables6_7_greedy_vs_plasma_%s", precision), knobs);
  bench::emit(tf, stringf("tables8_9_greedy_vs_fibonacci_%s", precision), knobs);
}

}  // namespace

int main() {
  bench::Knobs knobs;
  bench::banner("Tables 6-9: experimental Greedy vs PlasmaTree(TT) / Fibonacci", knobs);
  tables<double>("double", knobs);
  bench::Knobs zknobs = knobs;
  zknobs.reps = std::max(1, knobs.reps / 2);
  tables<std::complex<double>>("double_complex", zknobs);
  return 0;
}
