// Regenerates paper Table 5: theoretical critical paths for p = 40 and
// q = 1..40 — Greedy vs best-BS PlasmaTree(TT) vs Fibonacci, with the
// overhead and gain columns of the paper.
#include "bench_common.hpp"
#include "core/plan.hpp"
#include "sim/critical_path.hpp"
#include "trees/generators.hpp"

using namespace tiledqr;

int main() {
  bench::Knobs knobs;
  bench::banner("Table 5: Greedy vs PlasmaTree(TT) vs Fibonacci (theoretical)", knobs);
  const int p = knobs.p;

  TextTable t(stringf("p = %d, critical paths in units of nb^3/3 flops", p));
  t.set_header({"p", "q", "Greedy", "PlasmaTree(TT)", "BS", "Overhead", "Gain", "Fibonacci",
                "Overhead", "Gain"});
  for (int q = 1; q <= p; ++q) {
    if (knobs.quick && q > 8 && q % 8 != 0) continue;
    long greedy = sim::critical_path_units(p, q, trees::greedy_tree(p, q));
    auto best = core::best_plasma_bs(p, q, trees::KernelFamily::TT);
    long fib = sim::critical_path_units(p, q, trees::fibonacci_tree(p, q));
    auto ratio = [&](long x) { return stringf("%.4f", double(x) / double(greedy)); };
    auto gain = [&](long x) { return stringf("%.4f", 1.0 - double(greedy) / double(x)); };
    t.add_row({std::to_string(p), std::to_string(q), std::to_string(greedy),
               std::to_string(best.critical_path), std::to_string(best.bs),
               ratio(best.critical_path), gain(best.critical_path), std::to_string(fib),
               ratio(fib), gain(fib)});
  }
  bench::emit(t, "table5_critical_paths", knobs);
  return 0;
}
