// Ablation: Grasap(k) — how many trailing Asap columns help? The paper
// leaves "the best k as a function of p and q" open; this sweep answers it
// empirically (in the critical-path model) for a range of shapes.
#include "bench_common.hpp"
#include "sim/critical_path.hpp"
#include "sim/dynamic.hpp"
#include "trees/generators.hpp"

using namespace tiledqr;

int main() {
  bench::Knobs knobs;
  bench::banner("Ablation: Grasap(k) sweep (critical paths)", knobs);

  TextTable t("critical path of Grasap(k); k = 0 is Greedy, k = q is Asap");
  t.set_header({"p", "q", "Greedy", "best k", "best cp", "Asap", "sweep (k=0..q)"});
  for (auto [p, q] : std::vector<std::pair<int, int>>{
           {15, 2}, {15, 3}, {15, 6}, {30, 6}, {30, 10}, {40, 8}, {40, 16}, {64, 12}}) {
    if (knobs.quick && p > 30) continue;
    long greedy = sim::critical_path_units(p, q, trees::greedy_tree(p, q));
    long best_cp = greedy;
    int best_k = 0;
    std::string sweep;
    for (int k = 0; k <= q; ++k) {
      long cp = sim::simulate_grasap(p, q, k).critical_path;
      sweep += (k ? " " : "") + std::to_string(cp);
      if (cp < best_cp) {
        best_cp = cp;
        best_k = k;
      }
    }
    long asap = sim::simulate_asap(p, q).critical_path;
    t.add_row({std::to_string(p), std::to_string(q), std::to_string(greedy),
               std::to_string(best_k), std::to_string(best_cp), std::to_string(asap), sweep});
  }
  bench::emit(t, "ablation_grasap", knobs);
  return 0;
}
