// Shared plumbing for the bench harness: environment-tunable problem sizes
// and table emission (stdout + optional CSV next to the binary).
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/stringf.hpp"
#include "common/table.hpp"

namespace tiledqr::bench {

/// Benchmark-wide knobs (paper values in comments). Defaults are scaled to
/// finish in seconds on a laptop-class container; export the env vars to run
/// at paper scale.
struct Knobs {
  int p = int(env_long("TILEDQR_P", 40));        // paper: 40
  int nb = int(env_long("TILEDQR_NB", 64));      // paper: 200
  int ib = int(env_long("TILEDQR_IB", 32));      // paper: 32
  int threads = int(env_long("TILEDQR_THREADS", 0));  // paper: 48 cores
  int reps = int(env_long("TILEDQR_REPS", 2));
  bool csv = env_flag("TILEDQR_CSV", false);
  bool quick = env_flag("TILEDQR_QUICK", false);
};

inline void emit(const TextTable& table, const std::string& csv_name, const Knobs& knobs) {
  table.print(std::cout);
  if (knobs.csv) {
    std::ofstream out(csv_name + ".csv");
    out << table.csv();
    std::printf("(csv written to %s.csv)\n\n", csv_name.c_str());
  }
}

inline void banner(const std::string& what, const Knobs& knobs) {
  std::printf("=== %s ===\n", what.c_str());
  std::printf("knobs: p=%d nb=%d ib=%d threads=%d reps=%d (override via TILEDQR_P/NB/IB/"
              "THREADS/REPS)\n\n",
              knobs.p, knobs.nb, knobs.ib,
              knobs.threads > 0 ? knobs.threads : default_thread_count(), knobs.reps);
}

/// The q sweep used by the paper's experimental section.
inline std::vector<int> experimental_q_values(int p, bool quick) {
  std::vector<int> qs{1, 2, 4, 5, 10, 20, 40};
  if (quick) qs = {1, 4, 10};
  std::vector<int> out;
  for (int q : qs)
    if (q <= p) out.push_back(q);
  return out;
}

}  // namespace tiledqr::bench
