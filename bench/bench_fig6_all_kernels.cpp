// Figure 6: predicted and experimental performance of ALL algorithms — the
// TS-kernel family (FlatTree(TS), PlasmaTree(TS)) against the TT family
// (FlatTree, PlasmaTree, Fibonacci, Greedy) — in both precisions.
#include <complex>

#include "bench_experimental.hpp"
#include "sim/critical_path.hpp"
#include "trees/generators.hpp"

using namespace tiledqr;

namespace {

template <typename T>
void predicted(const char* precision, const bench::Knobs& knobs) {
  const int p = knobs.p;
  const int workers = knobs.threads > 0 ? knobs.threads : default_thread_count();
  double gamma = core::measure_gamma_seq<T>(knobs.nb, std::min(knobs.ib, knobs.nb));
  TextTable t(stringf("Figure 6 predicted GFLOP/s (%s), gamma_seq = %.3f, P = %d", precision,
                      gamma, workers));
  t.set_header({"q", "FlatTree(TS)", "PlasmaTree(TS,best)", "FlatTree(TT)",
                "PlasmaTree(TT,best)", "Fibonacci", "Greedy"});
  for (int q = 1; q <= p; ++q) {
    if (knobs.quick ? (q > 8 && q % 8 != 0) : (q > 10 && q % 5 != 0 && q != p)) continue;
    auto pred = [&](long cp) {
      return stringf("%.2f", core::predicted_gflops(gamma, p, q, cp, workers));
    };
    using trees::KernelFamily;
    long flat_ts = sim::critical_path_units(p, q, trees::flat_tree(p, q, KernelFamily::TS));
    auto plasma_ts = core::best_plasma_bs(p, q, KernelFamily::TS);
    long flat_tt = sim::critical_path_units(p, q, trees::flat_tree(p, q, KernelFamily::TT));
    auto plasma_tt = core::best_plasma_bs(p, q, KernelFamily::TT);
    long fib = sim::critical_path_units(p, q, trees::fibonacci_tree(p, q));
    long greedy = sim::critical_path_units(p, q, trees::greedy_tree(p, q));
    t.add_row({std::to_string(q), pred(flat_ts), pred(plasma_ts.critical_path), pred(flat_tt),
               pred(plasma_tt.critical_path), pred(fib), pred(greedy)});
  }
  bench::emit(t, std::string("fig6_predicted_") + precision, knobs);
}

template <typename T>
void experimental(const char* precision, const bench::Knobs& knobs) {
  TextTable t(stringf("Figure 6 experimental GFLOP/s (%s), p = %d, nb = %d", precision,
                      knobs.p, knobs.nb));
  t.set_header({"q", "FlatTree(TS)", "PlasmaTree(TS,best)", "BS", "FlatTree(TT)",
                "PlasmaTree(TT,best)", "BS", "Fibonacci", "Greedy"});
  for (int q : bench::experimental_q_values(knobs.p, knobs.quick)) {
    auto e = bench::run_sweep_point<T>(knobs, q, /*include_ts=*/true);
    auto f = [&](const core::RunRecord& r) { return stringf("%.3f", r.gflops); };
    t.add_row({std::to_string(q), f(e.flat_ts), f(e.plasma_ts), std::to_string(e.plasma_ts_bs),
               f(e.flat), f(e.plasma), std::to_string(e.plasma_bs), f(e.fibonacci),
               f(e.greedy)});
  }
  bench::emit(t, std::string("fig6_experimental_") + precision, knobs);
}

}  // namespace

int main() {
  bench::Knobs knobs;
  bench::banner("Figure 6: all kernels (TS + TT), predicted and experimental", knobs);
  bench::Knobs fast = knobs;
  fast.reps = 1;
  predicted<std::complex<double>>("double_complex", knobs);
  predicted<double>("double", knobs);
  experimental<std::complex<double>>("double_complex", fast);
  experimental<double>("double", fast);
  return 0;
}
