// tiledqr_analyze — offline critical-path forensics over an exported Chrome
// trace.
//
//   tiledqr_analyze <trace.json> [top_k]
//
// Re-parses the trace_event JSON the Tracer writes (TILEDQR_TRACE=...,
// Tracer::export_now, or the CI artifact), rebuilds the factorization's
// task DAG from the kernel kinds and tile coordinates each slice carries
// (dag::infer_dependencies replays the paper's access-set dependence rule),
// and prints the same realized-critical-path breakdown the in-process
// schedule report attaches: work vs gap split, dispatch vs cross-worker
// attribution, per-kind and per-worker aggregation, top-k gap edges. The
// model-side critical path is computed under per-kernel means measured from
// the trace itself, so no live process is needed.
//
// Exit status: 0 on a printed breakdown, 1 on parse/analysis failure, 2 on
// usage error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "dag/task_graph.hpp"
#include "obs/critical_path.hpp"
#include "obs/kernel_profile.hpp"
#include "obs/trace_import.hpp"

namespace {

using tiledqr::obs::TraceEvent;
using tiledqr::obs::TrackSnapshot;

struct GroupKey {
  std::uint32_t sub = 0;
  std::int32_t component = 0;
  bool operator<(const GroupKey& o) const {
    return sub != o.sub ? sub < o.sub : component < o.component;
  }
};

// Rebuilds the DAG of one traced factorization: its tasks, sorted by the
// task index the runtime recorded, must form exactly 0..n-1; dependencies
// are re-inferred from kinds + tile coordinates.
tiledqr::dag::TaskGraph rebuild_graph(const std::vector<const TraceEvent*>& events) {
  std::vector<const TraceEvent*> sorted = events;
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent* a, const TraceEvent* b) { return a->task < b->task; });
  std::vector<tiledqr::dag::Task> tasks;
  tasks.reserve(sorted.size());
  int p = 1;
  int q = 1;
  for (std::size_t n = 0; n < sorted.size(); ++n) {
    const TraceEvent& e = *sorted[n];
    TILEDQR_CHECK(e.task == std::int32_t(n),
                  "trace group is not a complete factorization: task indices must "
                  "cover 0..n-1 exactly (dropped events?)");
    tiledqr::dag::Task t{static_cast<tiledqr::kernels::KernelKind>(e.kind),
                         e.i, e.piv, e.k, e.j, 0, {}};
    p = std::max({p, e.i + 1, e.piv + 1});
    q = std::max({q, e.k + 1, e.j + 1});
    tasks.push_back(std::move(t));
  }
  tiledqr::dag::infer_dependencies(p, q, tasks);
  tiledqr::dag::TaskGraph g;
  g.p = p;
  g.q = q;
  g.tasks = std::move(tasks);
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: tiledqr_analyze <trace.json> [top_k]\n");
    return 2;
  }
  const int top_k = argc == 3 ? std::atoi(argv[2]) : 5;
  try {
    const std::vector<TrackSnapshot> tracks = tiledqr::obs::import_chrome_json(argv[1]);

    // Per-trace summary, plus: feed every kernel slice into the profiler so
    // the breakdown's model critical path uses means measured from this
    // trace (the offline stand-in for the live profile).
    long total_events = 0;
    std::map<GroupKey, std::vector<const TraceEvent*>> groups;
    for (const auto& t : tracks) {
      total_events += long(t.events.size());
      for (const auto& e : t.events) {
        if (e.kind < tiledqr::obs::KernelProfiler::kKinds) {
          tiledqr::obs::KernelProfiler::global().record(e.kind, e.end_ns - e.start_ns);
          if (e.task >= 0) groups[{e.submission, e.component}].push_back(&e);
        }
      }
    }
    std::printf("%s: %zu tracks, %ld events, %zu factorization group(s)\n", argv[1],
                tracks.size(), total_events, groups.size());
    if (groups.empty()) {
      std::fprintf(stderr, "tiledqr_analyze: no kernel task events in trace\n");
      return 1;
    }

    // Analyze the largest group — "the run" for a single-factorization
    // trace; a multi-run trace gets its dominant factorization.
    const auto largest =
        std::max_element(groups.begin(), groups.end(), [](const auto& a, const auto& b) {
          return a.second.size() < b.second.size();
        });
    const GroupKey key = largest->first;
    const tiledqr::dag::TaskGraph graph = rebuild_graph(largest->second);
    std::printf("rebuilt DAG for sub %u component %d: %d x %d tiles, %zu tasks, %zu edges\n",
                key.sub, key.component, graph.p, graph.q, graph.tasks.size(),
                graph.edge_count());

    tiledqr::obs::BreakdownOptions opt;
    opt.submission = key.sub;
    opt.component = key.component;
    opt.top_k = top_k;
    const auto breakdown = tiledqr::obs::build_critical_path_breakdown(tracks, graph, opt);
    if (!breakdown.valid) {
      std::fprintf(stderr, "tiledqr_analyze: no realized path found for the group\n");
      return 1;
    }
    std::fputs(tiledqr::obs::format_critical_path_breakdown(breakdown).c_str(), stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tiledqr_analyze: %s\n", e.what());
    return 1;
  }
}
